package metrics

import (
	"strings"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
}

func TestCollectorIntervalSampling(t *testing.T) {
	col := NewCollector(100)
	var events uint64
	var depth int64
	col.Watch("events", Cumulative, func() float64 { return float64(events) })
	col.Watch("depth", Level, func() float64 { return float64(depth) })

	// Interval 1: 5 events, depth ends at 3.
	events, depth = 5, 3
	col.Tick(100)
	// Interval 2: 2 more events, depth drops to 1.
	events, depth = 7, 1
	col.Tick(250) // mid-interval tick: boundary at 200 already crossed
	// Trailing partial interval: 1 more event.
	events = 8
	col.Finish(270)

	s := col.Series()
	wantCols := []string{"cycle", "events", "depth"}
	for i, w := range wantCols {
		if s.Columns[i] != w {
			t.Fatalf("column %d = %q, want %q", i, s.Columns[i], w)
		}
	}
	want := [][]float64{
		{100, 5, 3}, // first boundary
		{200, 2, 1}, // delta since previous boundary, level as-is
		{270, 1, 1}, // trailing partial row stamped at the final cycle
	}
	if len(s.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d: %v", len(s.Rows), len(want), s.Rows)
	}
	for i, w := range want {
		for j, v := range w {
			if s.Rows[i][j] != v {
				t.Fatalf("row %d = %v, want %v", i, s.Rows[i], w)
			}
		}
	}
}

func TestCollectorSkippedIntervalsEmitOneRowEach(t *testing.T) {
	col := NewCollector(10)
	col.Watch("x", Cumulative, func() float64 { return 1 })
	col.Tick(35) // engine idle across three boundaries
	if got := len(col.Series().Rows); got != 3 {
		t.Fatalf("rows after jump = %d, want 3 (boundaries 10, 20, 30)", got)
	}
}

func TestFinishExactlyOnBoundaryAddsNoExtraRow(t *testing.T) {
	col := NewCollector(50)
	col.Watch("x", Cumulative, func() float64 { return 1 })
	col.Finish(100)
	if got := len(col.Series().Rows); got != 2 {
		t.Fatalf("rows = %d, want 2 (boundaries 50 and 100, no trailing duplicate)", got)
	}
}

func TestSnapshotSplitsKinds(t *testing.T) {
	col := NewCollector(0)
	col.Watch("total", Cumulative, func() float64 { return 9 })
	col.Watch("level", Level, func() float64 { return 4 })
	h := col.NewHistogram("lat", "cycles")
	h.Observe(8)
	col.AddBreakout("mix", []LabeledValue{{Label: "a", Value: 1}})

	s := col.Snapshot()
	if s.Counters["total"] != 9 {
		t.Fatalf("counters = %v", s.Counters)
	}
	if s.Gauges["level"] != 4 {
		t.Fatalf("gauges = %v", s.Gauges)
	}
	if len(s.Histograms) != 1 || s.Histograms[0].Name != "lat" || s.Histograms[0].Count != 1 {
		t.Fatalf("histograms = %+v", s.Histograms)
	}
	if len(s.Breakouts["mix"]) != 1 {
		t.Fatalf("breakouts = %v", s.Breakouts)
	}
}

func TestZeroIntervalDisablesSeries(t *testing.T) {
	col := NewCollector(0)
	col.Watch("x", Cumulative, func() float64 { return 1 })
	col.Tick(1_000_000)
	col.Finish(2_000_000)
	if rows := col.Series().Rows; len(rows) != 0 {
		t.Fatalf("interval-0 collector sampled %d rows", len(rows))
	}
}

func TestNilCollectorIsNoOp(t *testing.T) {
	var col *Collector
	col.Watch("x", Cumulative, func() float64 { panic("probed a nil collector") })
	h := col.NewHistogram("h", "")
	h.Observe(3) // nil histogram: no-op
	col.Tick(100)
	col.Finish(200)
	col.AddBreakout("b", []LabeledValue{{Label: "a"}})
	col.AttachChromeTrace(NewChromeTrace())
	if col.Interval() != 0 || col.Snapshot() != nil || col.Series() != nil || col.ChromeTrace() != nil {
		t.Fatal("nil collector returned data")
	}
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Name() != "" {
		t.Fatal("nil histogram returned data")
	}
	if hs := h.Snapshot(); hs.Count != 0 || hs.Name != "" || hs.Buckets != nil {
		t.Fatal("nil histogram snapshot not zero")
	}
}

func TestSeriesWriteCSV(t *testing.T) {
	col := NewCollector(10)
	v := 0.0
	col.Watch("a", Cumulative, func() float64 { return v })
	col.Watch("b", Level, func() float64 { return 0.5 })
	v = 3
	col.Tick(10)
	v = 4.25
	col.Tick(20)

	var sb strings.Builder
	if err := col.Series().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "cycle,a,b\n10,3,0.5\n20,1.25,0.5\n"
	if sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}

	var nilSeries *Series
	if err := nilSeries.WriteCSV(&sb); err != nil {
		t.Fatalf("nil series write: %v", err)
	}
}

func TestSnapshotWriteJSON(t *testing.T) {
	col := NewCollector(0)
	col.Watch("commits", Cumulative, func() float64 { return 12 })
	var sb strings.Builder
	if err := col.Snapshot().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"counters"`, `"commits": 12`} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("json %q missing %q", sb.String(), want)
		}
	}
	var nilSnap *Snapshot
	if err := nilSnap.WriteJSON(&sb); err == nil {
		t.Fatal("nil snapshot write succeeded")
	}
}
