// Package metrics is the observability layer of the simulated CMP:
// named counters and gauges with zero-allocation hot paths, log₂-bucketed
// histograms for latency-style quantities, an interval sampler driven by
// simulated cycles, and exporters — JSON snapshot, CSV time series, and
// Chrome trace-event JSON loadable in Perfetto or chrome://tracing.
//
// The layer is strictly observational: enabling it never changes a
// simulated cycle, and when disabled (a nil *Collector) the per-event
// cost is a single nil check. Instruments (Counter, Gauge, Histogram)
// are plain value types whose hot-path methods compile to one or two
// machine instructions; the Collector only walks its probes at interval
// boundaries and at the end of the run.
package metrics

import "suvtm/internal/sim"

// Counter is a monotonically increasing event count. The zero value is
// ready to use; Inc and Add are single adds with no allocation, so
// components may count unconditionally on their hot paths.
type Counter uint64

// Inc adds one.
func (c *Counter) Inc() { *c++ }

// Add adds n.
func (c *Counter) Add(n uint64) { *c += Counter(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return uint64(*c) }

// Gauge is an instantaneous level (occupancy, queue depth). The zero
// value is ready to use.
type Gauge int64

// Set replaces the level.
func (g *Gauge) Set(v int64) { *g = Gauge(v) }

// Add moves the level by d (negative to decrease).
func (g *Gauge) Add(d int64) { *g += Gauge(d) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return int64(*g) }

// ProbeKind says how the sampler treats a probe's readings.
type ProbeKind uint8

const (
	// Cumulative probes report a monotonically non-decreasing total
	// (reads of a Counter); the sampler emits the per-interval delta, so
	// the series column is a rate per interval.
	Cumulative ProbeKind = iota
	// Level probes report an instantaneous level (occupancy gauges);
	// the sampler records the reading as-is.
	Level
)

// probe is one registered time-series column.
type probe struct {
	name string
	kind ProbeKind
	fn   func() float64
	last float64 // previous cumulative reading (Cumulative only)
}

// Collector gathers one run's metrics: registered probes sampled every
// interval of simulated cycles into a time series, histograms, and the
// final snapshot. A nil *Collector is a valid disabled collector: every
// method is a no-op, so the engine needs no branches beyond the
// receiver's own nil check.
type Collector struct {
	interval sim.Cycles
	nextAt   sim.Cycles
	lastRow  sim.Cycles
	probes   []probe
	hists    []*Histogram
	rows     [][]float64
	breakout map[string][]LabeledValue
	ct       *ChromeTrace
}

// NewCollector creates a collector sampling every interval simulated
// cycles. interval 0 disables the time series (snapshot and histograms
// still work).
func NewCollector(interval sim.Cycles) *Collector {
	return &Collector{interval: interval, nextAt: interval}
}

// Interval returns the sampling interval (0 = series disabled).
func (c *Collector) Interval() sim.Cycles {
	if c == nil {
		return 0
	}
	return c.interval
}

// Watch registers a named probe. All probes must be registered before
// the first Tick; the registration order fixes the CSV column order.
func (c *Collector) Watch(name string, kind ProbeKind, fn func() float64) {
	if c == nil {
		return
	}
	c.probes = append(c.probes, probe{name: name, kind: kind, fn: fn})
}

// NewHistogram registers and returns a log₂-bucketed histogram. On a
// nil collector it returns nil, which is itself a valid no-op histogram.
func (c *Collector) NewHistogram(name, unit string) *Histogram {
	if c == nil {
		return nil
	}
	h := &Histogram{name: name, unit: unit}
	c.hists = append(c.hists, h)
	return h
}

// AttachChromeTrace mirrors every interval sample into ct as Chrome
// counter events, so occupancy ramps render as counter tracks alongside
// the transaction spans.
func (c *Collector) AttachChromeTrace(ct *ChromeTrace) {
	if c == nil {
		return
	}
	c.ct = ct
}

// ChromeTrace returns the attached trace builder (possibly nil).
func (c *Collector) ChromeTrace() *ChromeTrace {
	if c == nil {
		return nil
	}
	return c.ct
}

// Tick advances the sampler to the current simulated cycle, emitting one
// row per interval boundary crossed. The engine calls it once per event;
// between boundaries it is a two-compare no-op.
func (c *Collector) Tick(now sim.Cycles) {
	if c == nil || c.interval == 0 {
		return
	}
	for now >= c.nextAt {
		c.sample(c.nextAt)
		c.nextAt += c.interval
	}
}

// Finish closes the run at the final cycle: samples the trailing partial
// interval (if any activity happened since the last boundary) and closes
// any open Chrome-trace spans.
func (c *Collector) Finish(now sim.Cycles) {
	if c == nil {
		return
	}
	c.Tick(now)
	if c.interval > 0 && now > c.lastRow {
		c.sample(now)
	}
	if c.ct != nil {
		c.ct.CloseOpen(now)
	}
}

// sample appends one time-series row stamped at cycle.
func (c *Collector) sample(cycle sim.Cycles) {
	row := make([]float64, 1+len(c.probes))
	row[0] = float64(cycle)
	for i := range c.probes {
		p := &c.probes[i]
		v := p.fn()
		if p.kind == Cumulative {
			row[1+i] = v - p.last
			p.last = v
		} else {
			row[1+i] = v
		}
	}
	c.rows = append(c.rows, row)
	c.lastRow = cycle
	if c.ct != nil {
		for i := range c.probes {
			c.ct.CounterSample(cycle, c.probes[i].name, row[1+i])
		}
	}
}

// AddBreakout stores a labeled-value table (directory message mix, mesh
// link loads) for the snapshot.
func (c *Collector) AddBreakout(name string, items []LabeledValue) {
	if c == nil || len(items) == 0 {
		return
	}
	if c.breakout == nil {
		c.breakout = make(map[string][]LabeledValue)
	}
	c.breakout[name] = items
}

// LabeledValue is one row of a snapshot breakout table.
type LabeledValue struct {
	Label string  `json:"label"`
	Value float64 `json:"value"`
}

// Snapshot is the end-of-run state of every instrument, exportable as
// JSON.
type Snapshot struct {
	Meta       map[string]string         `json:"meta,omitempty"`
	Counters   map[string]uint64         `json:"counters,omitempty"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot       `json:"histograms,omitempty"`
	Breakouts  map[string][]LabeledValue `json:"breakouts,omitempty"`
}

// Snapshot captures the current value of every probe and histogram.
// Cumulative probes land in Counters (as totals), Level probes in
// Gauges. Returns nil on a nil collector.
func (c *Collector) Snapshot() *Snapshot {
	if c == nil {
		return nil
	}
	s := &Snapshot{
		Meta:      make(map[string]string),
		Counters:  make(map[string]uint64),
		Gauges:    make(map[string]float64),
		Breakouts: c.breakout,
	}
	for i := range c.probes {
		p := &c.probes[i]
		v := p.fn()
		if p.kind == Cumulative {
			s.Counters[p.name] = uint64(v)
		} else {
			s.Gauges[p.name] = v
		}
	}
	for _, h := range c.hists {
		s.Histograms = append(s.Histograms, h.Snapshot())
	}
	return s
}

// Series is the sampled time series: Columns[0] is "cycle", the rest are
// probe names in registration order; each row holds the boundary cycle
// followed by one value per probe (per-interval deltas for Cumulative
// probes, instantaneous readings for Level probes).
type Series struct {
	Columns []string
	Rows    [][]float64
}

// Series returns the sampled time series (nil on a nil collector).
func (c *Collector) Series() *Series {
	if c == nil {
		return nil
	}
	cols := make([]string, 1+len(c.probes))
	cols[0] = "cycle"
	for i := range c.probes {
		cols[1+i] = c.probes[i].name
	}
	return &Series{Columns: cols, Rows: c.rows}
}
