package metrics

import (
	"math"
	"testing"
)

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{1 << 10, 11},
		{1<<32 - 1, 32}, {1 << 32, 33},
		{math.MaxUint64, 64},
	}
	for _, c := range cases {
		if got := BucketOf(c.v); got != c.bucket {
			t.Errorf("BucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
	if BucketLow(0) != 0 || BucketHigh(0) != 0 {
		t.Error("bucket 0 must hold exactly {0}")
	}
	if BucketLow(64) != 1<<63 || BucketHigh(64) != math.MaxUint64 {
		t.Errorf("bucket 64 = [%d, %d]", BucketLow(64), BucketHigh(64))
	}
}

func TestHistogramStats(t *testing.T) {
	h := NewHistogram("lat", "cycles")
	for _, v := range []uint64{3, 10, 100, 1000, 0} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 1113 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	s := h.Snapshot()
	if s.Min != 0 || s.Max != 1000 {
		t.Fatalf("min=%d max=%d", s.Min, s.Max)
	}
	if math.Abs(s.Mean-1113.0/5) > 1e-9 {
		t.Fatalf("mean = %v", s.Mean)
	}
	// Five non-empty buckets: {0}, [2,3], [8,15], [64,127], [512,1023].
	if len(s.Buckets) != 5 {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
	var n uint64
	for _, b := range s.Buckets {
		n += b.Count
	}
	if n != 5 {
		t.Fatalf("bucket counts sum to %d", n)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram("q", "")
	// 90 fast samples, 10 slow ones: p50 must stay in the fast bucket,
	// p99 must reach the slow one.
	for i := 0; i < 90; i++ {
		h.Observe(10) // bucket [8,15]
	}
	for i := 0; i < 10; i++ {
		h.Observe(5000) // bucket [4096,8191]
	}
	if p50 := h.Quantile(0.50); p50 != 15 {
		t.Fatalf("p50 = %d, want 15 (fast bucket's upper edge)", p50)
	}
	if p99 := h.Quantile(0.99); p99 != 5000 {
		t.Fatalf("p99 = %d, want 5000 (bucket edge clamped to observed max)", p99)
	}
	// Out-of-range q clamps.
	if h.Quantile(-1) != 15 || h.Quantile(2) != 5000 {
		t.Fatalf("q clamping: %d, %d", h.Quantile(-1), h.Quantile(2))
	}
	single := NewHistogram("s", "")
	single.Observe(7)
	if single.Quantile(0.5) != 7 {
		t.Fatalf("single-sample median = %d", single.Quantile(0.5))
	}
}

// FuzzBucketBoundaries checks the bucketing invariants for arbitrary
// values: every value lands in exactly one bucket whose [Low, High]
// range contains it, and the ranges tile the uint64 domain.
func FuzzBucketBoundaries(f *testing.F) {
	for _, seed := range []uint64{0, 1, 2, 3, 4, 7, 8, 15, 16, 63, 64, 65,
		1023, 1024, 1025, 1<<31 - 1, 1 << 31, 1<<63 - 1, 1 << 63, math.MaxUint64} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, v uint64) {
		b := BucketOf(v)
		if b < 0 || b >= NumBuckets {
			t.Fatalf("BucketOf(%d) = %d out of range", v, b)
		}
		if lo, hi := BucketLow(b), BucketHigh(b); v < lo || v > hi {
			t.Fatalf("value %d outside its bucket %d = [%d, %d]", v, b, lo, hi)
		}
		if b > 0 && BucketHigh(b-1) != BucketLow(b)-1 {
			t.Fatalf("gap between bucket %d and %d", b-1, b)
		}
		h := NewHistogram("f", "")
		h.Observe(v)
		if h.Count() != 1 || h.Sum() != v {
			t.Fatalf("observe(%d): count=%d sum=%d", v, h.Count(), h.Sum())
		}
		if q := h.Quantile(1); q != v {
			t.Fatalf("max quantile of single sample %d = %d", v, q)
		}
	})
}
