package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"suvtm/internal/faults"
	"suvtm/internal/sim"
	"suvtm/internal/trace"
)

// faultsTid is the pseudo-thread id carrying fault-window instants.
const faultsTid = -1

// ChromeTrace builds a Chrome trace-event JSON file (the format read by
// Perfetto and chrome://tracing) from streamed lifecycle events: one
// track (tid) per core carrying a complete "X" span for every
// transaction attempt from begin to commit or abort, instant events for
// NACKs, remote kills, barriers and suspensions, and counter tracks for
// every sampled time-series column when attached to a Collector.
//
// Timestamps map one simulated cycle to one microsecond, so the viewer's
// time ruler reads directly in cycles.
type ChromeTrace struct {
	events []chromeEvent
	open   map[int]openSpan
	named  map[int]bool // tids whose thread_name metadata was emitted
	spans  int          // completed X spans (tests, acceptance checks)
}

type openSpan struct {
	start sim.Cycles
	site  uint64
}

// chromeEvent is one trace-event record. Field names follow the Chrome
// trace-event format spec.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	CName string         `json:"cname,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// NewChromeTrace returns an empty trace builder.
func NewChromeTrace() *ChromeTrace {
	return &ChromeTrace{open: make(map[int]openSpan), named: make(map[int]bool)}
}

// Spans returns the number of completed transaction spans recorded.
func (t *ChromeTrace) Spans() int {
	if t == nil {
		return 0
	}
	return t.spans
}

// Events returns the number of trace events accumulated.
func (t *ChromeTrace) Events() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Emit implements trace.Sink: it converts one lifecycle event into trace
// records. Begins open a per-core span; commits and aborts close it.
func (t *ChromeTrace) Emit(e trace.Event) {
	if t == nil {
		return
	}
	t.ensureThread(e.Core)
	switch e.Kind {
	case trace.Begin:
		t.open[e.Core] = openSpan{start: e.Cycle, site: e.Info}
	case trace.Commit:
		t.closeSpan(e.Core, e.Cycle, "commit", "good")
	case trace.Abort:
		t.closeSpan(e.Core, e.Cycle, "abort", "terrible")
	case trace.NACK:
		t.instant(e, "nack", map[string]any{
			"line": fmt.Sprintf("%#x", e.Line), "holder": e.Other,
		})
	case trace.RemoteKill:
		args := map[string]any{"by": e.Other}
		if e.Line != trace.NoLine && e.Line != 0 {
			// The killing line, when the doom decision had a precise
			// witness — the viewer shows which address killed the span.
			args["line"] = fmt.Sprintf("%#x", e.Line)
		}
		t.instant(e, "remote-kill", args)
	case trace.BarrierArrive:
		t.instant(e, fmt.Sprintf("barrier %d arrive", e.Info), nil)
	case trace.BarrierRelease:
		t.instant(e, fmt.Sprintf("barrier %d release", e.Info), nil)
	case trace.Suspend:
		t.instant(e, "suspend", nil)
	case trace.Resume:
		t.instant(e, "resume", nil)
	case trace.FaultOn, trace.FaultOff:
		// Fault windows render on a dedicated pseudo-track so injected
		// adversity lines up visually with the per-core transaction spans.
		name := "fault-on"
		if e.Kind == trace.FaultOff {
			name = "fault-off"
		}
		fe := e
		fe.Core = faultsTid
		t.ensureThread(faultsTid)
		t.instant(fe, fmt.Sprintf("%s %s", name, faults.Kind(e.Info)), map[string]any{
			"fault": faults.Kind(e.Info).String(), "core": e.Other,
		})
	case trace.StarveEscalate:
		t.instant(e, "starve-escalate", map[string]any{"consecAborts": e.Info})
	case trace.TokenAcquire:
		t.instant(e, "token-acquire", map[string]any{"consecAborts": e.Info})
	case trace.TokenRelease:
		t.instant(e, "token-release", nil)
	}
}

// closeSpan emits the complete "X" event for core's open span.
func (t *ChromeTrace) closeSpan(core int, end sim.Cycles, outcome, cname string) {
	sp, ok := t.open[core]
	if !ok {
		return
	}
	delete(t.open, core)
	dur := float64(end - sp.start)
	if dur <= 0 {
		dur = 1 // zero-width spans are invisible in the viewer
	}
	t.events = append(t.events, chromeEvent{
		Name: fmt.Sprintf("tx site %d", sp.site), Cat: "tx", Ph: "X",
		Ts: float64(sp.start), Dur: dur, Tid: core, CName: cname,
		Args: map[string]any{"site": sp.site, "outcome": outcome},
	})
	t.spans++
}

// instant emits a thread-scoped instant event.
func (t *ChromeTrace) instant(e trace.Event, name string, args map[string]any) {
	t.events = append(t.events, chromeEvent{
		Name: name, Cat: "event", Ph: "i", Scope: "t",
		Ts: float64(e.Cycle), Tid: e.Core, Args: args,
	})
}

// CounterSample emits a counter-track event ("C") for one sampled
// time-series value.
func (t *ChromeTrace) CounterSample(cycle sim.Cycles, name string, value float64) {
	if t == nil {
		return
	}
	t.events = append(t.events, chromeEvent{
		Name: name, Ph: "C", Ts: float64(cycle),
		Args: map[string]any{"value": value},
	})
}

// CloseOpen closes every still-open span at the final cycle (a
// transaction in flight when the run ended, or a trace cut short).
func (t *ChromeTrace) CloseOpen(end sim.Cycles) {
	if t == nil {
		return
	}
	cores := make([]int, 0, len(t.open))
	for core := range t.open {
		cores = append(cores, core)
	}
	sort.Ints(cores)
	for _, core := range cores {
		t.closeSpan(core, end, "unfinished", "")
	}
}

// ensureThread emits the thread_name metadata record for a core's track
// the first time the core appears.
func (t *ChromeTrace) ensureThread(core int) {
	if t.named[core] {
		return
	}
	t.named[core] = true
	name := fmt.Sprintf("core %d", core)
	if core == faultsTid {
		name = "faults"
	}
	t.events = append(t.events, chromeEvent{
		Name: "thread_name", Ph: "M", Tid: core,
		Args: map[string]any{"name": name},
	})
}

// WriteJSON renders the accumulated events as a Chrome trace file.
func (t *ChromeTrace) WriteJSON(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("metrics: nil chrome trace")
	}
	doc := struct {
		TraceEvents     []chromeEvent     `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		OtherData       map[string]string `json:"otherData"`
	}{
		TraceEvents:     t.events,
		DisplayTimeUnit: "ms",
		OtherData:       map[string]string{"timeUnit": "1 us = 1 simulated cycle"},
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
