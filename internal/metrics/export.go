package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV renders the time series with a "cycle,<probe>,..." header and
// one row per sampled interval. Cycle stamps are written as integers,
// probe values with minimal formatting.
func (s *Series) WriteCSV(w io.Writer) error {
	if s == nil {
		return nil
	}
	if _, err := io.WriteString(w, strings.Join(s.Columns, ",")+"\n"); err != nil {
		return err
	}
	var sb strings.Builder
	for _, row := range s.Rows {
		sb.Reset()
		for i, v := range row {
			if i > 0 {
				sb.WriteByte(',')
			}
			if i == 0 {
				sb.WriteString(strconv.FormatUint(uint64(v), 10))
			} else {
				sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
		sb.WriteByte('\n')
		if _, err := io.WriteString(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	if s == nil {
		return fmt.Errorf("metrics: nil snapshot")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
