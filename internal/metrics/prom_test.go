package metrics

import (
	"strings"
	"testing"
)

// TestWriteProm pins the Prometheus text exposition output: sorted
// metric order, metadata labels on every sample, and cumulative le
// buckets summing to _count.
func TestWriteProm(t *testing.T) {
	s := &Snapshot{
		Meta:     map[string]string{"app": "intruder", "scheme": "SUV-TM"},
		Counters: map[string]uint64{"tx.commits": 42, "dir.gets": 7},
		Gauges:   map[string]float64{"redirect.entries": 3.5},
		Histograms: []HistogramSnapshot{{
			Name: "tx.duration", Unit: "cycles", Count: 6, Sum: 300,
			Buckets: []BucketCount{
				{Low: 0, High: 16, Count: 2},
				{Low: 16, High: 32, Count: 3},
				{Low: 32, High: 64, Count: 1},
			},
		}},
	}
	var sb strings.Builder
	if err := s.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE suv_dir_gets counter",
		`suv_dir_gets{app="intruder",scheme="SUV-TM"} 7`,
		"# TYPE suv_tx_commits counter",
		`suv_tx_commits{app="intruder",scheme="SUV-TM"} 42`,
		"# TYPE suv_redirect_entries gauge",
		`suv_redirect_entries{app="intruder",scheme="SUV-TM"} 3.5`,
		"# TYPE suv_tx_duration histogram",
		`suv_tx_duration_bucket{app="intruder",scheme="SUV-TM",le="16"} 2`,
		`suv_tx_duration_bucket{app="intruder",scheme="SUV-TM",le="32"} 5`,
		`suv_tx_duration_bucket{app="intruder",scheme="SUV-TM",le="64"} 6`,
		`suv_tx_duration_bucket{app="intruder",scheme="SUV-TM",le="+Inf"} 6`,
		`suv_tx_duration_sum{app="intruder",scheme="SUV-TM"} 300`,
		`suv_tx_duration_count{app="intruder",scheme="SUV-TM"} 6`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Counters are emitted in sorted name order.
	if strings.Index(out, "suv_dir_gets") > strings.Index(out, "suv_tx_commits") {
		t.Error("counters not sorted by name")
	}
	// A second render must be byte-identical (deterministic map drains).
	var sb2 strings.Builder
	if err := s.WriteProm(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("WriteProm is nondeterministic across calls")
	}
}

// TestWritePromNoMeta checks the no-labels and nil-snapshot paths.
func TestWritePromNoMeta(t *testing.T) {
	s := &Snapshot{Counters: map[string]uint64{"x": 1}}
	var sb strings.Builder
	if err := s.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "suv_x 1\n") {
		t.Errorf("bare sample wrong: %q", sb.String())
	}
	var nilSnap *Snapshot
	if err := nilSnap.WriteProm(&sb); err == nil {
		t.Error("nil snapshot write succeeded")
	}
}
