package forensics

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"suvtm/internal/sim"
)

// TestFoldedRoundTrip checks WriteFolded → ParseFolded is the identity
// on a representative report.
func TestFoldedRoundTrip(t *testing.T) {
	folds := []Fold{
		{Site: 3, Line: 0x4000, HasLin: true, Cause: "eager-nack", Cycles: 1200},
		{Site: 0, Line: 0x17, HasLin: true, Cause: "cycle", Cycles: 500},
		{Site: -1, Line: 0x4000, HasLin: true, Cause: "nontx-store", Cycles: 90},
		{Site: 7, Line: NoLine, HasLin: false, Cause: "token", Cycles: 5},
		{Site: 2, Line: 0, HasLin: true, Cause: "commit-kill", Cycles: 0},
	}
	var buf bytes.Buffer
	if err := (&Report{Folds: folds}).WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseFolded(&buf)
	if err != nil {
		t.Fatalf("parse back: %v\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(got, folds) {
		t.Errorf("round trip drifted:\n got %+v\nwant %+v", got, folds)
	}
}

// TestParseFoldedErrors checks every malformed-line class is rejected
// with a line number.
func TestParseFoldedErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"no weight", "site=1;line=0x10;cycle"},
		{"bad weight", "site=1;line=0x10;cycle ten"},
		{"two frames", "site=1;cycle 10"},
		{"four frames", "site=1;line=0x10;x;cycle 10"},
		{"bad site", "site=abc;line=0x10;cycle 10"},
		{"negative site", "site=-4;line=0x10;cycle 10"},
		{"no site prefix", "core=1;line=0x10;cycle 10"},
		{"bad line", "site=1;line=0xzz;cycle 10"},
		{"no line prefix", "site=1;addr=0x10;cycle 10"},
		{"empty cause", "site=1;line=0x10; 10"},
	}
	for _, tc := range cases {
		if _, err := ParseFolded(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: %q parsed without error", tc.name, tc.in)
		}
	}
	// Blank lines are tolerated.
	folds, err := ParseFolded(strings.NewReader("\n\nsite=1;line=?;token 3\n\n"))
	if err != nil || len(folds) != 1 {
		t.Errorf("blank-line tolerance: folds=%v err=%v", folds, err)
	}
}

// FuzzFoldedRoundTrip fuzzes the parser with arbitrary text: anything
// it accepts must re-encode and re-parse to the same folds (the
// encoder/parser pair is closed under round-tripping).
func FuzzFoldedRoundTrip(f *testing.F) {
	f.Add("site=3;line=0x4000;eager-nack 1200\nsite=nontx;line=?;token 5\n")
	f.Add("site=0;line=0x0;none 0")
	f.Add("site=18446744073709551615;line=0xffffffffffffffff;overflow 18446744073709551615")
	f.Add("site=1;line=?;a b 5")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		first, err := ParseFolded(strings.NewReader(in))
		if err != nil {
			return // rejected input is fine; we only require closure
		}
		var buf bytes.Buffer
		if err := (&Report{Folds: first}).WriteFolded(&buf); err != nil {
			t.Fatalf("re-encode of accepted input failed: %v", err)
		}
		second, err := ParseFolded(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of own encoding failed: %v\n%s", err, buf.String())
		}
		if len(first) == 0 && len(second) == 0 {
			return
		}
		if !reflect.DeepEqual(first, second) {
			t.Errorf("round trip drifted:\n in  %q\n enc %q\n got %+v\nwant %+v",
				in, buf.String(), second, first)
		}
	})
}

// TestFoldFrames pins the frame spelling the flamegraph tooling sees.
func TestFoldFrames(t *testing.T) {
	f := Fold{Site: 3, Line: sim.Line(0x4000), HasLin: true, Cause: "eager-nack"}
	if got, want := foldFrames(&f), "site=3;line=0x4000;eager-nack"; got != want {
		t.Errorf("frames = %q, want %q", got, want)
	}
	f = Fold{Site: -1, HasLin: false, Cause: "nontx-store"}
	if got, want := foldFrames(&f), "site=nontx;line=?;nontx-store"; got != want {
		t.Errorf("frames = %q, want %q", got, want)
	}
}
