package forensics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"suvtm/internal/sim"
)

// TopK is the default number of hot lines / hot sites a report surfaces.
const TopK = 10

// Summary is the report's headline classification totals.
type Summary struct {
	// NACKs is every refused request; Injected the subset manufactured by
	// the fault injector (no signature involved).
	NACKs    uint64 `json:"nacks"`
	Injected uint64 `json:"injected_nacks"`
	Aborts   uint64 `json:"aborts"`

	// SigHits counts conflict decisions reported by a signature;
	// PreciseHits the subset the holder's precise line sets confirm.
	// TrueConflicts + FalsePositives == SigHits, and
	// FalsePositives == SigHits - PreciseHits (the oracle invariant).
	SigHits        uint64 `json:"sig_hits"`
	PreciseHits    uint64 `json:"precise_hits"`
	TrueConflicts  uint64 `json:"true_conflicts"`
	FalsePositives uint64 `json:"false_positives"`

	// FalsePositiveRate is FalsePositives/SigHits (0 when no hits).
	// PredictedAliasRate is the mean of the holder signatures' predicted
	// alias probability sampled at each false positive — measured vs
	// predicted aliasing side by side.
	FalsePositiveRate  float64 `json:"false_positive_rate"`
	PredictedAliasRate float64 `json:"predicted_alias_rate"`

	StallCycles  sim.Cycles `json:"stall_cycles"`
	WastedCycles sim.Cycles `json:"wasted_cycles"`

	// Cascades counts aborts whose killer had itself aborted during the
	// victim's attempt (lost work compounding downstream); MaxCascadeDepth
	// is the longest such chain. FriendlyFire counts unordered core pairs
	// that killed each other at least once each.
	Cascades        uint64 `json:"cascades"`
	MaxCascadeDepth int    `json:"max_cascade_depth"`
	FriendlyFire    uint64 `json:"friendly_fire_pairs"`
}

// CauseStat is one cause's share of events and lost cycles.
type CauseStat struct {
	Cause  string     `json:"cause"`
	Events uint64     `json:"events"`
	Cycles sim.Cycles `json:"cycles"`
}

// SiteStat is one transaction begin site's conflict profile.
type SiteStat struct {
	// Site is the begin site id; the all-ones sentinel renders as -1
	// (non-transactional agent).
	Site           int64      `json:"site"`
	NACKs          uint64     `json:"nacks"`
	Aborts         uint64     `json:"aborts"`
	TrueConflicts  uint64     `json:"true_conflicts"`
	FalsePositives uint64     `json:"false_positives"`
	StallCycles    sim.Cycles `json:"stall_cycles"`
	WastedCycles   sim.Cycles `json:"wasted_cycles"`
	// Kills is the number of conflicts where this site was the refusing
	// holder or the killer — hot sites surface from both directions.
	Kills uint64 `json:"kills"`
}

// LineStat is one cache line's conflict profile.
type LineStat struct {
	Line           sim.Line   `json:"line"`
	NACKs          uint64     `json:"nacks"`
	Aborts         uint64     `json:"aborts"`
	TrueConflicts  uint64     `json:"true_conflicts"`
	FalsePositives uint64     `json:"false_positives"`
	StallCycles    sim.Cycles `json:"stall_cycles"`
	WastedCycles   sim.Cycles `json:"wasted_cycles"`
	// MaxSharers is the directory's largest observed sharer count for the
	// line at conflict time (contention degree).
	MaxSharers int `json:"max_sharers"`
}

// Edge is one killer→victim edge of the abort-causality graph.
type Edge struct {
	Killer       int        `json:"killer"`
	Victim       int        `json:"victim"`
	Aborts       uint64     `json:"aborts"`
	WastedCycles sim.Cycles `json:"wasted_cycles"`
	// Mutual marks friendly fire: the reverse edge also has aborts.
	Mutual bool `json:"mutual,omitempty"`
}

// Fold is one site→line→cause stack with its lost-cycle weight (the
// folded-stack profile in structured form).
type Fold struct {
	Site   int64      `json:"site"`
	Line   sim.Line   `json:"line"`
	HasLin bool       `json:"has_line"`
	Cause  string     `json:"cause"`
	Cycles sim.Cycles `json:"cycles"`
}

// Report is a run's full conflict-forensics output. Every slice is
// sorted deterministically (hottest first, ties broken by id), so two
// replays of the same (config, seed) marshal to identical JSON.
type Report struct {
	Scheme  string      `json:"scheme,omitempty"`
	App     string      `json:"app,omitempty"`
	Cores   int         `json:"cores"`
	Seed    uint64      `json:"seed"`
	Summary Summary     `json:"summary"`
	Causes  []CauseStat `json:"causes"`
	Sites   []SiteStat  `json:"sites"`
	Lines   []LineStat  `json:"lines"`
	Edges   []Edge      `json:"edges"`
	Folds   []Fold      `json:"folds"`
}

// siteID widens a site to the JSON representation (NoSite → -1).
func siteID(site uint32) int64 {
	if site == NoSite {
		return -1
	}
	return int64(site)
}

// Report freezes the collector's aggregates into a deterministic
// Report. topK bounds the hot-site and hot-line tables (<=0 means
// TopK); edges and folds are always complete.
func (f *Collector) Report(topK int) *Report {
	if f == nil {
		return &Report{}
	}
	if topK <= 0 {
		topK = TopK
	}
	r := &Report{Cores: f.cores}

	r.Summary = Summary{
		NACKs:           f.nacks,
		Injected:        f.injected,
		Aborts:          f.aborts,
		SigHits:         f.sigHits,
		PreciseHits:     f.preciseHits,
		TrueConflicts:   f.trueConf,
		FalsePositives:  f.falsePos,
		StallCycles:     f.stallCycles,
		WastedCycles:    f.wastedCycles,
		Cascades:        f.cascades,
		MaxCascadeDepth: f.maxCascadeDepth,
	}
	if f.sigHits > 0 {
		r.Summary.FalsePositiveRate = float64(f.falsePos) / float64(f.sigHits)
	}
	if f.aliasN > 0 {
		r.Summary.PredictedAliasRate = f.aliasSum / float64(f.aliasN)
	}

	for c := Cause(0); c < numCauses; c++ {
		if f.causes[c].events == 0 {
			continue
		}
		r.Causes = append(r.Causes, CauseStat{
			Cause:  c.String(),
			Events: f.causes[c].events,
			Cycles: f.causes[c].cycles,
		})
	}

	//suv:orderinsensitive the map is drained into a slice sorted below
	for site, s := range f.sites {
		r.Sites = append(r.Sites, SiteStat{
			Site:           siteID(site),
			NACKs:          s.nacks,
			Aborts:         s.aborts,
			TrueConflicts:  s.truePos,
			FalsePositives: s.falsePos,
			StallCycles:    s.stall,
			WastedCycles:   s.wasted,
			Kills:          s.killed,
		})
	}
	sort.Slice(r.Sites, func(i, j int) bool {
		a, b := &r.Sites[i], &r.Sites[j]
		if aw, bw := a.StallCycles+a.WastedCycles, b.StallCycles+b.WastedCycles; aw != bw {
			return aw > bw
		}
		return a.Site < b.Site
	})
	if len(r.Sites) > topK {
		r.Sites = r.Sites[:topK]
	}

	for i := range f.lineAggs {
		l := &f.lineAggs[i]
		r.Lines = append(r.Lines, LineStat{
			Line:           l.line,
			NACKs:          l.nacks,
			Aborts:         l.aborts,
			TrueConflicts:  l.truePos,
			FalsePositives: l.falsePos,
			StallCycles:    l.stall,
			WastedCycles:   l.wasted,
			MaxSharers:     l.maxSharers,
		})
	}
	sort.Slice(r.Lines, func(i, j int) bool {
		a, b := &r.Lines[i], &r.Lines[j]
		if aw, bw := a.StallCycles+a.WastedCycles, b.StallCycles+b.WastedCycles; aw != bw {
			return aw > bw
		}
		return a.Line < b.Line
	})
	if len(r.Lines) > topK {
		r.Lines = r.Lines[:topK]
	}

	for k := 0; k < f.cores; k++ {
		for v := 0; v < f.cores; v++ {
			e := f.edges[k*f.cores+v]
			if e.aborts == 0 {
				continue
			}
			mutual := f.edges[v*f.cores+k].aborts > 0
			r.Edges = append(r.Edges, Edge{
				Killer: k, Victim: v,
				Aborts: e.aborts, WastedCycles: e.wasted,
				Mutual: mutual,
			})
			if mutual && k < v {
				r.Summary.FriendlyFire++
			}
		}
	}
	sort.Slice(r.Edges, func(i, j int) bool {
		a, b := &r.Edges[i], &r.Edges[j]
		if a.WastedCycles != b.WastedCycles {
			return a.WastedCycles > b.WastedCycles
		}
		if a.Killer != b.Killer {
			return a.Killer < b.Killer
		}
		return a.Victim < b.Victim
	})

	//suv:orderinsensitive the map is drained into a slice sorted below
	for k, w := range f.folds {
		r.Folds = append(r.Folds, Fold{
			Site:   siteID(k.site),
			Line:   k.line,
			HasLin: k.line != NoLine,
			Cause:  k.cause.String(),
			Cycles: w,
		})
	}
	sort.Slice(r.Folds, func(i, j int) bool {
		a, b := &r.Folds[i], &r.Folds[j]
		if a.Cycles != b.Cycles {
			return a.Cycles > b.Cycles
		}
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Cause < b.Cause
	})
	return r
}

// WriteJSON marshals the report with indentation.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// String renders a compact human-readable digest of the report.
func (r *Report) String() string {
	s := &r.Summary
	return fmt.Sprintf(
		"forensics: nacks=%d aborts=%d sig-hits=%d true=%d false-pos=%d (%.2f%%) stall=%d wasted=%d cascades=%d(depth<=%d) friendly-fire=%d",
		s.NACKs, s.Aborts, s.SigHits, s.TrueConflicts, s.FalsePositives,
		100*s.FalsePositiveRate, s.StallCycles, s.WastedCycles,
		s.Cascades, s.MaxCascadeDepth, s.FriendlyFire)
}
