package forensics

import (
	"bytes"
	"math/rand"
	"testing"

	"suvtm/internal/sim"
)

// TestClassification checks the signature false-positive accounting and
// the oracle invariant on a hand-built event stream.
func TestClassification(t *testing.T) {
	f := NewCollector(4)
	if !f.Enabled() {
		t.Fatal("live collector reports disabled")
	}

	// Three signature-reported NACKs: two confirmed by the precise sets,
	// one pure aliasing artifact.
	f.NACK(NACKEvent{Requester: 0, Holder: 1, Line: 0x100, Cause: CauseEagerNACK,
		ReqSite: 1, HoldSite: 2, SigHit: true, Precise: true, Stall: 20, Sharers: 2})
	f.NACK(NACKEvent{Requester: 2, Holder: 1, Line: 0x100, Cause: CauseEagerNACK,
		ReqSite: 1, HoldSite: 2, SigHit: true, Precise: true, Stall: 20, Sharers: 3})
	f.NACK(NACKEvent{Requester: 3, Holder: 1, Line: 0x200, Cause: CauseEagerNACK,
		ReqSite: 3, HoldSite: 2, SigHit: true, Precise: false, Stall: 40, AliasRate: 0.5})
	// An injected NACK involves no signature at all.
	f.NACK(NACKEvent{Requester: 0, Holder: NoCore, Line: NoLine, Cause: CauseInjected,
		ReqSite: 1, HoldSite: NoSite, Stall: 10})

	r := f.Report(0)
	s := r.Summary
	if s.NACKs != 4 || s.Injected != 1 {
		t.Errorf("nacks=%d injected=%d, want 4/1", s.NACKs, s.Injected)
	}
	if s.SigHits != 3 || s.PreciseHits != 2 {
		t.Errorf("sigHits=%d preciseHits=%d, want 3/2", s.SigHits, s.PreciseHits)
	}
	if s.TrueConflicts != 2 || s.FalsePositives != 1 {
		t.Errorf("true=%d false=%d, want 2/1", s.TrueConflicts, s.FalsePositives)
	}
	// The oracle invariant ties the two bookkeeping paths together.
	if s.FalsePositives != s.SigHits-s.PreciseHits {
		t.Errorf("oracle violated: FP=%d, sigHits-preciseHits=%d",
			s.FalsePositives, s.SigHits-s.PreciseHits)
	}
	if s.TrueConflicts+s.FalsePositives != s.SigHits {
		t.Errorf("true+false=%d != sigHits=%d", s.TrueConflicts+s.FalsePositives, s.SigHits)
	}
	if got, want := s.FalsePositiveRate, 1.0/3.0; got != want {
		t.Errorf("FP rate=%v, want %v", got, want)
	}
	if got, want := s.PredictedAliasRate, 0.5; got != want {
		t.Errorf("predicted alias=%v, want %v", got, want)
	}
	if s.StallCycles != 90 {
		t.Errorf("stall=%d, want 90", s.StallCycles)
	}

	// The hot line is 0x100 (40 stall cycles over two NACKs, 3 sharers).
	if len(r.Lines) == 0 || r.Lines[0].Line != 0x200 {
		// 0x200 carries 40 cycles too; tie broken by line id? No: 0x100
		// has 40 total as well — the sort is by cycles then id, so 0x100
		// (lower id) must come first.
		if len(r.Lines) == 0 || r.Lines[0].Line != 0x100 {
			t.Errorf("hot line = %+v, want 0x100 first", r.Lines)
		}
	}
	if r.Lines[0].Line == 0x100 && r.Lines[0].MaxSharers != 3 {
		t.Errorf("maxSharers=%d, want 3", r.Lines[0].MaxSharers)
	}
	// Site 2 refused three requests; its kill count surfaces it.
	for _, st := range r.Sites {
		if st.Site == 2 && st.Kills != 3 {
			t.Errorf("holder site kills=%d, want 3", st.Kills)
		}
	}
}

// TestCascadesAndFriendlyFire checks the abort-causality graph: a
// victim whose killer itself aborted during the victim's attempt is a
// cascade, and mutual kills are friendly fire.
func TestCascadesAndFriendlyFire(t *testing.T) {
	f := NewCollector(4)
	// Core 1 aborts core 0 at cycle 100.
	f.Abort(AbortEvent{Cycle: 100, Victim: 0, Killer: 1, Line: 0x10,
		Cause: CauseOlderWins, VictimSite: 1, KillerSite: 2,
		Wasted: 50, AttemptStart: 40})
	// Core 0 then aborts core 1 at cycle 150; core 0's own abort (cycle
	// 100) falls inside core 1's attempt [90, 150] — a cascade, and the
	// 0<->1 pair becomes friendly fire.
	f.Abort(AbortEvent{Cycle: 150, Victim: 1, Killer: 0, Line: 0x10,
		Cause: CauseOlderWins, VictimSite: 2, KillerSite: 1,
		Wasted: 60, AttemptStart: 90})
	// An unrelated self-abort (token) has no killer and no cascade.
	f.Abort(AbortEvent{Cycle: 200, Victim: 3, Killer: NoCore, Line: NoLine,
		Cause: CauseToken, VictimSite: 3, KillerSite: NoSite,
		Wasted: 10, AttemptStart: 180})

	r := f.Report(0)
	if r.Summary.Aborts != 3 {
		t.Errorf("aborts=%d, want 3", r.Summary.Aborts)
	}
	if r.Summary.Cascades != 1 {
		t.Errorf("cascades=%d, want 1", r.Summary.Cascades)
	}
	if r.Summary.MaxCascadeDepth != 2 {
		t.Errorf("maxCascadeDepth=%d, want 2", r.Summary.MaxCascadeDepth)
	}
	if r.Summary.FriendlyFire != 1 {
		t.Errorf("friendlyFire=%d, want 1", r.Summary.FriendlyFire)
	}
	if r.Summary.WastedCycles != 120 {
		t.Errorf("wasted=%d, want 120", r.Summary.WastedCycles)
	}
	if len(r.Edges) != 2 {
		t.Fatalf("edges=%d, want 2", len(r.Edges))
	}
	for _, e := range r.Edges {
		if !e.Mutual {
			t.Errorf("edge %d->%d not marked mutual", e.Killer, e.Victim)
		}
	}
	// None of these abort events carries a signature decision (older-wins
	// dooms are classified at their triggering NACK; token kills involve
	// no signature), so the classification totals stay untouched.
	s := r.Summary
	if s.SigHits != 0 || s.FalsePositives != s.SigHits-s.PreciseHits {
		t.Errorf("classification drifted: %+v", s)
	}
}

// TestReportDeterminism feeds the same commutative event set in two
// different orders and requires bit-identical reports (the map drains
// must all be sorted).
func TestReportDeterminism(t *testing.T) {
	events := make([]NACKEvent, 0, 64)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 64; i++ {
		events = append(events, NACKEvent{
			Cycle:     sim.Cycles(i),
			Requester: i % 8, Holder: (i + 1) % 8,
			Line:  sim.Line(0x1000 + rng.Intn(16)),
			Cause: CauseEagerNACK, ReqSite: uint32(rng.Intn(5)), HoldSite: uint32(rng.Intn(5)),
			SigHit: true, Precise: rng.Intn(3) > 0,
			Stall: sim.Cycles(10 + rng.Intn(50)), Sharers: rng.Intn(4),
		})
	}
	render := func(order []int) []byte {
		f := NewCollector(8)
		for _, i := range order {
			f.NACK(events[i])
		}
		var buf bytes.Buffer
		if err := f.Report(0).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	fwd := make([]int, len(events))
	rev := make([]int, len(events))
	for i := range events {
		fwd[i] = i
		rev[i] = len(events) - 1 - i
	}
	if a, b := render(fwd), render(rev); !bytes.Equal(a, b) {
		t.Errorf("report depends on commutative event order:\n%s\nvs\n%s", a, b)
	}
}

// TestDisabledCollectorHooks checks the nil-collector contract the
// machine's hot paths rely on: no-ops, and zero allocations.
func TestDisabledCollectorHooks(t *testing.T) {
	var f *Collector
	if f.Enabled() {
		t.Error("nil collector reports enabled")
	}
	r := f.Report(0)
	if r == nil || r.Summary.NACKs != 0 {
		t.Errorf("nil collector report = %+v", r)
	}
	allocs := testing.AllocsPerRun(100, func() {
		f.NACK(NACKEvent{Requester: 1, Holder: 2, Line: 0x100, SigHit: true})
		f.Abort(AbortEvent{Victim: 1, Killer: 2, Line: 0x100})
		_ = f.Enabled()
	})
	if allocs != 0 {
		t.Errorf("disabled hooks allocate %.1f/op, want 0", allocs)
	}
}

// TestTopKTruncation checks that only the site/line tables are bounded;
// edges and folds stay complete.
func TestTopKTruncation(t *testing.T) {
	f := NewCollector(2)
	for i := 0; i < 8; i++ {
		f.NACK(NACKEvent{Requester: 0, Holder: 1,
			Line: sim.Line(0x100 + i), Cause: CauseEagerNACK,
			ReqSite: uint32(i), HoldSite: NoSite,
			SigHit: true, Precise: true, Stall: sim.Cycles(10 * (i + 1))})
	}
	r := f.Report(3)
	if len(r.Sites) != 3 || len(r.Lines) != 3 {
		t.Errorf("topK ignored: %d sites, %d lines, want 3/3", len(r.Sites), len(r.Lines))
	}
	if len(r.Folds) != 8 {
		t.Errorf("folds truncated to %d, want 8", len(r.Folds))
	}
	// Hottest first: the 80-cycle line leads.
	if r.Lines[0].StallCycles != 80 {
		t.Errorf("lines not sorted hottest-first: %+v", r.Lines)
	}
}
