package forensics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"suvtm/internal/sim"
)

// Folded-stack export: one line per site→line→cause stack in the
// Brendan Gregg collapsed format ("frame;frame;frame weight"), directly
// consumable by flamegraph.pl, speedscope, or pprof's collapsed-profile
// importer. Weights are simulated cycles lost (stall for NACKs, wasted
// work for aborts).

// foldFrames renders a fold's three frames.
func foldFrames(f *Fold) string {
	site := "site=nontx"
	if f.Site >= 0 {
		site = fmt.Sprintf("site=%d", f.Site)
	}
	line := "line=?"
	if f.HasLin {
		line = fmt.Sprintf("line=0x%x", uint64(f.Line))
	}
	return site + ";" + line + ";" + f.Cause
}

// WriteFolded emits the report's cycle-loss profile as collapsed
// stacks, hottest first (the report's fold order is already
// deterministic).
func (r *Report) WriteFolded(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := range r.Folds {
		f := &r.Folds[i]
		if _, err := fmt.Fprintf(bw, "%s %d\n", foldFrames(f), f.Cycles); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseFolded parses collapsed stacks produced by WriteFolded back into
// folds. It is the encoder's round-trip inverse (the fuzz target's
// oracle) and tolerates blank lines.
func ParseFolded(r io.Reader) ([]Fold, error) {
	var out []Fold
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		sp := strings.LastIndexByte(text, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("folded line %d: no weight: %q", lineNo, text)
		}
		weight, err := strconv.ParseUint(text[sp+1:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("folded line %d: bad weight: %v", lineNo, err)
		}
		frames := strings.Split(text[:sp], ";")
		if len(frames) != 3 {
			return nil, fmt.Errorf("folded line %d: want 3 frames, got %d", lineNo, len(frames))
		}
		var f Fold
		f.Cycles = sim.Cycles(weight)
		switch {
		case frames[0] == "site=nontx":
			f.Site = -1
		case strings.HasPrefix(frames[0], "site="):
			site, err := strconv.ParseInt(frames[0][len("site="):], 10, 64)
			if err != nil || site < 0 {
				return nil, fmt.Errorf("folded line %d: bad site frame %q", lineNo, frames[0])
			}
			f.Site = site
		default:
			return nil, fmt.Errorf("folded line %d: bad site frame %q", lineNo, frames[0])
		}
		switch {
		case frames[1] == "line=?":
			f.Line, f.HasLin = NoLine, false
		case strings.HasPrefix(frames[1], "line=0x"):
			ln, err := strconv.ParseUint(frames[1][len("line=0x"):], 16, 64)
			if err != nil {
				return nil, fmt.Errorf("folded line %d: bad line frame %q", lineNo, frames[1])
			}
			f.Line, f.HasLin = sim.Line(ln), true
		default:
			return nil, fmt.Errorf("folded line %d: bad line frame %q", lineNo, frames[1])
		}
		if frames[2] == "" {
			return nil, fmt.Errorf("folded line %d: empty cause frame", lineNo)
		}
		f.Cause = frames[2]
		out = append(out, f)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
