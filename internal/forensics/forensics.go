// Package forensics is the conflict-provenance layer of the simulated
// CMP: it attributes every NACK and every transaction abort to a cause,
// a killer, a line and a transaction site, and — because the simulator
// holds precise read/write LineSets alongside the Bloom signatures —
// classifies each conflict as a true data conflict or a signature false
// positive.
//
// The layer is strictly observational: enabling it never changes a
// simulated cycle, and a disabled collector (a nil *Collector) costs the
// machine a single nil check per conflict event. All aggregation is
// deterministic — two runs of the same (config, seed) produce
// bit-identical reports — so forensic output is replay-stable and can be
// diffed across schemes.
package forensics

import (
	"suvtm/internal/sim"
)

// NoSite marks a conflict participant that was not inside a transaction
// (a non-transactional access has no begin site).
const NoSite = ^uint32(0)

// NoLine marks a conflict whose specific line is unknown (a
// signature-to-signature intersection with no precise witness — by
// construction a pure false positive).
const NoLine = ^sim.Line(0)

// NoCore marks an absent peer core (an injected NACK has no holder; a
// self-abort has no remote killer).
const NoCore = -1

// AccessKind says which kind of memory access raised a conflict.
type AccessKind uint8

// Access kinds.
const (
	Read AccessKind = iota
	Write
	numAccessKinds
)

var accessKindNames = [numAccessKinds]string{"read", "write"}

// String names the access kind.
func (k AccessKind) String() string {
	if k < numAccessKinds {
		return accessKindNames[k]
	}
	return "AccessKind(?)"
}

// Cause classifies why a conflict event happened — which machine
// mechanism stalled or killed the transaction.
type Cause uint8

// Conflict causes. The first group are stall (NACK) causes, the second
// are abort causes; CauseEagerNACK appears in both roles (a NACK chain
// that escalates into a possible-cycle abort is reported as CauseCycle).
const (
	// CauseNone is an event with no recorded provenance (should not
	// appear on any machine-generated report; kept as a safe zero).
	CauseNone Cause = iota
	// CauseEagerNACK is an eager directory-level conflict: the requester
	// stalled against a holder's read/write signature.
	CauseEagerNACK
	// CauseLazyValidation is a lazy committer stalled at commit
	// arbitration by an active eager transaction's signature.
	CauseLazyValidation
	// CauseInjected is a NACK manufactured by the fault injector's storm
	// window (no real holder, no signature involved).
	CauseInjected
	// CauseCycle is a possible-cycle self-abort (LogTM distributed cycle
	// avoidance): the requester aborted itself rather than risk deadlock.
	CauseCycle
	// CauseCommitKill is a lazy transaction doomed by a committing
	// transaction's write-signature broadcast (committer wins).
	CauseCommitKill
	// CauseNonTxStore is a lazy transaction doomed by a durable
	// non-transactional store (strong isolation).
	CauseNonTxStore
	// CauseOlderWins is a holder doomed under the older-wins policy by an
	// older NACKed requester.
	CauseOlderWins
	// CauseToken is a transaction doomed when another starving core was
	// granted the global serialization token (forward-progress
	// escalation, not a data conflict).
	CauseToken
	// CauseOverflow is a self-inflicted kill: the scheme doomed its own
	// transaction because speculative state overflowed the hardware
	// holding it.
	CauseOverflow
	numCauses
)

var causeNames = [numCauses]string{
	"none", "eager-nack", "lazy-validation", "injected", "cycle",
	"commit-kill", "nontx-store", "older-wins", "token", "overflow",
}

// String names the cause (the folded-stack frame spelling).
func (c Cause) String() string {
	if c < numCauses {
		return causeNames[c]
	}
	return "Cause(?)"
}

// NumCauses is the number of declared causes (report table sizing).
const NumCauses = int(numCauses)

// NACKEvent is one refused memory request: the requester stalled (or,
// for CauseCycle escalations, will abort) against the holder.
type NACKEvent struct {
	Cycle     sim.Cycles
	Requester int // the core that pays the stall
	Holder    int // the core whose isolation refused it; NoCore = injected
	Line      sim.Line
	Kind      AccessKind
	Cause     Cause
	ReqSite   uint32 // requester's begin site; NoSite outside a transaction
	HoldSite  uint32 // holder's begin site; NoSite when absent
	// SigHit says a signature reported the conflict; Precise says the
	// holder's precise read/write LineSets confirm it. SigHit && !Precise
	// is a signature false positive (aliasing or saturation).
	SigHit  bool
	Precise bool
	// Stall is the cycles the requester loses to this refusal.
	Stall sim.Cycles
	// Sharers is the directory's sharer count for the line at conflict
	// time (contention degree of the hot line).
	Sharers int
	// AliasRate is the holder signature's predicted false-positive
	// probability at its current fill (signature.Bloom.AliasRate),
	// sampled so reports can compare measured vs predicted aliasing.
	AliasRate float64
}

// AbortEvent is one aborted transaction attempt with its recorded doom
// provenance.
type AbortEvent struct {
	Cycle  sim.Cycles
	Victim int
	Killer int // NoCore for self-inflicted aborts with no remote agent
	Line   sim.Line
	Cause  Cause
	// VictimSite is the victim's outermost begin site; KillerSite the
	// killer's at doom time (NoSite when unknown).
	VictimSite uint32
	KillerSite uint32
	// SigHit/Precise carry the doom decision's classification (false for
	// causes that involve no signature: token, overflow).
	SigHit  bool
	Precise bool
	// Wasted is the attempt's transactional work thrown away (the cycles
	// that land in the Wasted breakdown component).
	Wasted sim.Cycles
	// AttemptStart is the cycle of the attempt's outermost begin; the
	// cascade detector uses it to link this abort to the killer's own
	// recent abort.
	AttemptStart sim.Cycles
}

// coreFx is the collector's per-core state.
type coreFx struct {
	lastAbortAt  sim.Cycles
	cascadeDepth int
	aborted      bool
}

// siteFx aggregates conflict activity for one transaction begin site.
type siteFx struct {
	nacks, aborts       uint64
	truePos, falsePos   uint64
	stall, wasted       sim.Cycles
	killed, friendlyNow uint64 // aborts this site caused on others
}

// lineFx aggregates conflict activity for one cache line.
type lineFx struct {
	line              sim.Line
	nacks, aborts     uint64
	truePos, falsePos uint64
	stall, wasted     sim.Cycles
	maxSharers        int
}

// edgeFx is one killer→victim cell of the abort-causality graph.
type edgeFx struct {
	aborts uint64
	wasted sim.Cycles
}

// foldKey addresses one site→line→cause stack of the cycle-loss
// profile.
type foldKey struct {
	site  uint32
	line  sim.Line
	cause Cause
}

// Collector gathers one run's conflict provenance. It is single-
// goroutine, like the machine that feeds it; concurrent fleet runs each
// own a private collector. A nil *Collector is a valid disabled
// collector: both hooks are nil-check no-ops, so the machine's conflict
// paths stay allocation-free when forensics is off.
type Collector struct {
	cores int

	// Classification accounting. sigHits counts every conflict decision
	// a signature reported; preciseHits the subset the precise LineSets
	// confirm; trueConf/falsePos the per-event classification. The
	// invariant falsePos == sigHits - preciseHits ties the two
	// bookkeeping paths together (the oracle test asserts it).
	sigHits, preciseHits uint64
	trueConf, falsePos   uint64

	nacks, injected uint64
	aborts          uint64
	stallCycles     sim.Cycles
	wastedCycles    sim.Cycles

	aliasSum float64 // sum of sampled predicted alias rates
	aliasN   uint64

	perCore []coreFx
	edges   []edgeFx // cores×cores, killer-major
	causes  [numCauses]struct {
		events uint64
		cycles sim.Cycles
	}

	sites    map[uint32]*siteFx
	lineIdx  sim.LineMap[int32]
	lineAggs []lineFx
	folds    map[foldKey]sim.Cycles

	cascades        uint64
	maxCascadeDepth int
}

// NewCollector creates a collector for a machine with the given core
// count.
func NewCollector(cores int) *Collector {
	return &Collector{
		cores:   cores,
		perCore: make([]coreFx, cores),
		edges:   make([]edgeFx, cores*cores),
		sites:   make(map[uint32]*siteFx),
		folds:   make(map[foldKey]sim.Cycles),
	}
}

// Enabled reports whether the collector is live (nil receivers are the
// disabled state).
//
//suv:hotpath
func (f *Collector) Enabled() bool { return f != nil }

// NACK records one refused request. On a nil collector it is a no-op;
// the machine calls it unconditionally from its conflict paths.
//
//suv:hotpath
func (f *Collector) NACK(ev NACKEvent) {
	if f == nil {
		return
	}
	f.recordNACK(ev)
}

// Abort records one aborted attempt. On a nil collector it is a no-op.
//
//suv:hotpath
func (f *Collector) Abort(ev AbortEvent) {
	if f == nil {
		return
	}
	f.recordAbort(ev)
}

// recordNACK is the live path of NACK (unannotated: the enabled
// collector may grow its aggregates).
func (f *Collector) recordNACK(ev NACKEvent) {
	f.nacks++
	if ev.Cause == CauseInjected {
		f.injected++
	}
	f.stallCycles += ev.Stall
	f.classify(ev.SigHit, ev.Precise, ev.AliasRate)
	f.causes[ev.Cause].events++
	f.causes[ev.Cause].cycles += ev.Stall

	s := f.site(ev.ReqSite)
	s.nacks++
	s.stall += ev.Stall
	f.tally(&s.truePos, &s.falsePos, ev.SigHit, ev.Precise)
	if ev.HoldSite != NoSite && ev.HoldSite != ev.ReqSite {
		// The holder's site is the other half of the contention pair;
		// count the refusal it issued so hot sites surface from both
		// directions.
		f.site(ev.HoldSite).killed++
	}

	if ev.Line != NoLine {
		l := f.line(ev.Line)
		l.nacks++
		l.stall += ev.Stall
		f.tally(&l.truePos, &l.falsePos, ev.SigHit, ev.Precise)
		if ev.Sharers > l.maxSharers {
			l.maxSharers = ev.Sharers
		}
	}
	f.folds[foldKey{site: ev.ReqSite, line: ev.Line, cause: ev.Cause}] += ev.Stall
}

// recordAbort is the live path of Abort.
func (f *Collector) recordAbort(ev AbortEvent) {
	f.aborts++
	f.wastedCycles += ev.Wasted
	f.classify(ev.SigHit, ev.Precise, 0)
	f.causes[ev.Cause].events++
	f.causes[ev.Cause].cycles += ev.Wasted

	s := f.site(ev.VictimSite)
	s.aborts++
	s.wasted += ev.Wasted
	f.tally(&s.truePos, &s.falsePos, ev.SigHit, ev.Precise)
	if ev.KillerSite != NoSite {
		f.site(ev.KillerSite).killed++
	}

	if ev.Line != NoLine {
		l := f.line(ev.Line)
		l.aborts++
		l.wasted += ev.Wasted
		f.tally(&l.truePos, &l.falsePos, ev.SigHit, ev.Precise)
	}
	f.folds[foldKey{site: ev.VictimSite, line: ev.Line, cause: ev.Cause}] += ev.Wasted

	// Abort-causality graph and cascade chains.
	v := &f.perCore[ev.Victim]
	if ev.Killer != NoCore && ev.Killer != ev.Victim && ev.Killer < f.cores {
		e := &f.edges[ev.Killer*f.cores+ev.Victim]
		e.aborts++
		e.wasted += ev.Wasted
		k := &f.perCore[ev.Killer]
		if k.aborted && k.lastAbortAt >= ev.AttemptStart {
			// The killer itself aborted during this victim's attempt: the
			// victim's lost work is downstream of the killer's loss — an
			// abort cascade.
			f.cascades++
			v.cascadeDepth = k.cascadeDepth + 1
			if v.cascadeDepth > f.maxCascadeDepth {
				f.maxCascadeDepth = v.cascadeDepth
			}
		} else {
			v.cascadeDepth = 1
		}
	} else {
		v.cascadeDepth = 1
	}
	v.aborted = true
	v.lastAbortAt = ev.Cycle
}

// classify feeds the signature false-positive accounting.
func (f *Collector) classify(sigHit, precise bool, aliasRate float64) {
	if !sigHit {
		return
	}
	f.sigHits++
	if precise {
		f.preciseHits++
		f.trueConf++
	} else {
		f.falsePos++
		f.aliasSum += aliasRate
		f.aliasN++
	}
}

// tally bumps a true/false-positive pair for one aggregate.
func (f *Collector) tally(truePos, falsePos *uint64, sigHit, precise bool) {
	if !sigHit {
		return
	}
	if precise {
		*truePos++
	} else {
		*falsePos++
	}
}

// site returns (lazily creating) the aggregate for a begin site.
func (f *Collector) site(site uint32) *siteFx {
	s, ok := f.sites[site]
	if !ok {
		s = &siteFx{}
		f.sites[site] = s
	}
	return s
}

// line returns (lazily creating) the aggregate for a cache line.
func (f *Collector) line(ln sim.Line) *lineFx {
	if i, ok := f.lineIdx.Get(ln); ok {
		return &f.lineAggs[i]
	}
	f.lineIdx.Put(ln, int32(len(f.lineAggs)))
	f.lineAggs = append(f.lineAggs, lineFx{line: ln})
	return &f.lineAggs[len(f.lineAggs)-1]
}
