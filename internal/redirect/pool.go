package redirect

import (
	"suvtm/internal/mem"
	"suvtm/internal/sim"
)

// Pool is the preserved redirect pool: a reserved memory region from
// which SUV allocates the redirected locations of transactional stores.
// Pages are claimed from the simulated address space on demand
// (Section III: "SUV-TM automatically allocates a page in the preserved
// redirect pool"); lines freed by committed redirect-backs or aborted
// transient adds are recycled through a free list.
//
// Pages are claimed in groups of poolGroupPages, each page placed at a
// PoolInterleave-aligned address so the group covers one full bank-
// stripe period, and line handout round-robins across the group's
// pages. Redirected lines are exactly the hottest shared data in the
// system; packing them onto a single page — a single bank stripe —
// would funnel every redirected access, and every L1 eviction of a
// redirected copy, through one directory/L2 bank, which serializes the
// parallel window engine on it. The skipped alignment padding is dead
// address space (the simulated memory is sparse). The interleave is a
// fixed layout constant, NOT a function of the configured bank count:
// results must stay bit-identical across bank counts (the
// banked-vs-monolithic oracle), so the layout cannot depend on one.
type Pool struct {
	alloc     *mem.Allocator
	free      []sim.Line
	group     []sim.Line // base lines of the current page group
	groupIdx  int        // next handout slot in the group rotation
	linesLeft int
	pages     uint64
	// exhausted simulates preserved-pool exhaustion (the fault
	// injector's PoolExhaust window): allocations still succeed — the OS
	// reclamation path always finds a line eventually — but the caller
	// is told the allocation went through software reclamation so it can
	// charge the stall and count the graceful degradation.
	exhausted bool
	reclaims  uint64
}

// PoolInterleave is the placement alignment of preserved-pool pages: 64
// KB, one bank stripe of the default machine's L2 at its finest common
// banking (1 MB way-size / 16 banks). See the type comment.
const PoolInterleave = 64 << 10

// poolGroupPages is how many stripe-spread pages one group claims — a
// full 16-stripe period, so round-robined pool lines cover every bank.
const poolGroupPages = 16

// NewPool creates a pool drawing pages from alloc.
func NewPool(alloc *mem.Allocator) *Pool {
	return &Pool{alloc: alloc}
}

// Reset re-arms the pool on a (typically rewound) allocator, dropping
// every page claim and free line of the previous run. A reset pool is
// equivalent to NewPool(alloc) except that the free-list storage is
// retained.
func (p *Pool) Reset(alloc *mem.Allocator) {
	p.alloc = alloc
	p.free = p.free[:0]
	p.group = p.group[:0]
	p.groupIdx = 0
	p.linesLeft = 0
	p.pages = 0
	p.exhausted = false
	p.reclaims = 0
}

// Alloc returns a fresh pool line, reusing freed lines first and
// claiming a new page group when the current one is exhausted. Handout
// rotates across the group's stripe-spread pages, so consecutive
// allocations land on different banks.
func (p *Pool) Alloc() sim.Line {
	if p.exhausted {
		p.reclaims++
	}
	if n := len(p.free); n > 0 {
		line := p.free[n-1]
		p.free = p.free[:n-1]
		return line
	}
	if p.linesLeft == 0 {
		p.group = p.group[:0]
		for i := 0; i < poolGroupPages; i++ {
			base := p.alloc.Alloc(mem.PageBytes, PoolInterleave)
			p.group = append(p.group, sim.LineOf(base))
			p.pages++
		}
		p.groupIdx = 0
		p.linesLeft = poolGroupPages * (mem.PageBytes / sim.LineBytes)
	}
	k := p.groupIdx
	p.groupIdx++
	p.linesLeft--
	return p.group[k%poolGroupPages] + sim.Line(k/poolGroupPages)
}

// Release returns a pool line to the free list.
func (p *Pool) Release(line sim.Line) {
	p.free = append(p.free, line)
}

// Pages returns the number of pages ever claimed.
func (p *Pool) Pages() uint64 { return p.pages }

// FreeLines returns the current free-list length (tests).
func (p *Pool) FreeLines() int { return len(p.free) }

// SetExhausted marks (or unmarks) the pool exhausted; see the field
// comment.
func (p *Pool) SetExhausted(on bool) { p.exhausted = on }

// Exhausted reports whether the pool is in the exhausted regime.
func (p *Pool) Exhausted() bool { return p.exhausted }

// Reclaims returns the number of allocations served through software
// reclamation while the pool was exhausted.
func (p *Pool) Reclaims() uint64 { return p.reclaims }
