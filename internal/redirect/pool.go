package redirect

import (
	"suvtm/internal/mem"
	"suvtm/internal/sim"
)

// Pool is the preserved redirect pool: a reserved memory region from
// which SUV allocates the redirected locations of transactional stores.
// Pages are claimed from the simulated address space on demand
// (Section III: "SUV-TM automatically allocates a page in the preserved
// redirect pool"); lines freed by committed redirect-backs or aborted
// transient adds are recycled through a free list.
type Pool struct {
	alloc     *mem.Allocator
	free      []sim.Line
	nextLine  sim.Line
	linesLeft int
	pages     uint64
	// exhausted simulates preserved-pool exhaustion (the fault
	// injector's PoolExhaust window): allocations still succeed — the OS
	// reclamation path always finds a line eventually — but the caller
	// is told the allocation went through software reclamation so it can
	// charge the stall and count the graceful degradation.
	exhausted bool
	reclaims  uint64
}

// NewPool creates a pool drawing pages from alloc.
func NewPool(alloc *mem.Allocator) *Pool {
	return &Pool{alloc: alloc}
}

// Reset re-arms the pool on a (typically rewound) allocator, dropping
// every page claim and free line of the previous run. A reset pool is
// equivalent to NewPool(alloc) except that the free-list storage is
// retained.
func (p *Pool) Reset(alloc *mem.Allocator) {
	p.alloc = alloc
	p.free = p.free[:0]
	p.nextLine = 0
	p.linesLeft = 0
	p.pages = 0
	p.exhausted = false
	p.reclaims = 0
}

// Alloc returns a fresh pool line, reusing freed lines first and
// claiming a new page when the current one is exhausted.
func (p *Pool) Alloc() sim.Line {
	if p.exhausted {
		p.reclaims++
	}
	if n := len(p.free); n > 0 {
		line := p.free[n-1]
		p.free = p.free[:n-1]
		return line
	}
	if p.linesLeft == 0 {
		base := p.alloc.AllocPage()
		p.nextLine = sim.LineOf(base)
		p.linesLeft = mem.PageBytes / sim.LineBytes
		p.pages++
	}
	line := p.nextLine
	p.nextLine++
	p.linesLeft--
	return line
}

// Release returns a pool line to the free list.
func (p *Pool) Release(line sim.Line) {
	p.free = append(p.free, line)
}

// Pages returns the number of pages ever claimed.
func (p *Pool) Pages() uint64 { return p.pages }

// FreeLines returns the current free-list length (tests).
func (p *Pool) FreeLines() int { return len(p.free) }

// SetExhausted marks (or unmarks) the pool exhausted; see the field
// comment.
func (p *Pool) SetExhausted(on bool) { p.exhausted = on }

// Exhausted reports whether the pool is in the exhausted regime.
func (p *Pool) Exhausted() bool { return p.exhausted }

// Reclaims returns the number of allocations served through software
// reclamation while the pool was exhausted.
func (p *Pool) Reclaims() uint64 { return p.reclaims }
