package redirect

import (
	"fmt"

	"suvtm/internal/sim"
)

// Level says where a redirect-table lookup was satisfied.
type Level uint8

const (
	// LevelL1 is a first-level (per-core, zero-latency) table hit.
	LevelL1 Level = iota
	// LevelL2 is a shared second-level table hit.
	LevelL2
	// LevelMemory means the entry had been swapped out and the
	// software-managed structure in main memory was searched.
	LevelMemory
	// LevelAbsent means no entry exists for the line (a summary-signature
	// false positive, or a speculative use of the original address).
	LevelAbsent
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelMemory:
		return "memory"
	case LevelAbsent:
		return "absent"
	}
	return fmt.Sprintf("Level(%d)", uint8(l))
}

// l1Table is the per-core first-level redirect table: fully associative,
// LRU-replaced, zero access latency (it is integrated in the core's
// pipeline — Section IV-A). Transient entries of the running transaction
// are pinned; when every slot is pinned the table has overflowed.
type l1Table struct {
	capacity int
	slots    map[sim.Line]*l1Slot
	clock    uint64
	pinned   int
}

type l1Slot struct {
	lru    uint64
	pinned bool
}

func newL1Table(capacity int) *l1Table {
	return &l1Table{capacity: capacity, slots: make(map[sim.Line]*l1Slot, capacity)}
}

// contains refreshes LRU and reports presence.
func (t *l1Table) contains(line sim.Line) bool {
	s, ok := t.slots[line]
	if !ok {
		return false
	}
	t.clock++
	s.lru = t.clock
	return true
}

// insert places line in the table, evicting the LRU unpinned slot when
// full. It returns the evicted line and whether an eviction happened; if
// every slot is pinned the insert fails (overflow) and ok is false.
func (t *l1Table) insert(line sim.Line, pinned bool) (victim sim.Line, evicted, ok bool) {
	if s, exists := t.slots[line]; exists {
		t.clock++
		s.lru = t.clock
		if pinned && !s.pinned {
			s.pinned = true
			t.pinned++
		}
		return 0, false, true
	}
	if len(t.slots) >= t.capacity {
		var victimLine sim.Line
		var victimSlot *l1Slot
		for l, s := range t.slots {
			if s.pinned {
				continue
			}
			if victimSlot == nil || s.lru < victimSlot.lru || (s.lru == victimSlot.lru && l < victimLine) {
				victimLine, victimSlot = l, s
			}
		}
		if victimSlot == nil {
			return 0, false, false // all pinned: table overflow
		}
		delete(t.slots, victimLine)
		victim, evicted = victimLine, true
	}
	t.clock++
	t.slots[line] = &l1Slot{lru: t.clock, pinned: pinned}
	if pinned {
		t.pinned++
	}
	return victim, evicted, true
}

// unpin clears the pinned flag (commit/abort of the owning transaction).
func (t *l1Table) unpin(line sim.Line) {
	if s, ok := t.slots[line]; ok && s.pinned {
		s.pinned = false
		t.pinned--
	}
}

// remove drops line from the table.
func (t *l1Table) remove(line sim.Line) {
	if s, ok := t.slots[line]; ok {
		if s.pinned {
			t.pinned--
		}
		delete(t.slots, line)
	}
}

func (t *l1Table) len() int { return len(t.slots) }

// l2Table is the shared second-level redirect table: set-associative,
// LRU-replaced, fixed access latency. Entries evicted here are swapped
// out to a software-managed structure in main memory.
type l2Table struct {
	sets  int
	ways  int
	slots []map[sim.Line]uint64 // per-set line -> lru stamp
	clock uint64
}

func newL2Table(entries, ways int) *l2Table {
	if ways <= 0 || entries < ways {
		panic("redirect: bad second-level table geometry")
	}
	sets := entries / ways
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("redirect: second-level table set count must be a power of two")
	}
	t := &l2Table{sets: sets, ways: ways, slots: make([]map[sim.Line]uint64, sets)}
	for i := range t.slots {
		t.slots[i] = make(map[sim.Line]uint64, ways)
	}
	return t
}

func (t *l2Table) setOf(line sim.Line) map[sim.Line]uint64 {
	return t.slots[int(line)&(t.sets-1)]
}

func (t *l2Table) contains(line sim.Line) bool {
	set := t.setOf(line)
	if _, ok := set[line]; !ok {
		return false
	}
	t.clock++
	set[line] = t.clock
	return true
}

// insert places line, evicting the set's LRU entry when full. The
// returned victim (if any) must be recorded as swapped out to memory.
func (t *l2Table) insert(line sim.Line) (victim sim.Line, evicted bool) {
	set := t.setOf(line)
	t.clock++
	if _, ok := set[line]; ok {
		set[line] = t.clock
		return 0, false
	}
	if len(set) >= t.ways {
		var victimLine sim.Line
		var victimStamp uint64
		first := true
		for l, stamp := range set {
			if first || stamp < victimStamp || (stamp == victimStamp && l < victimLine) {
				victimLine, victimStamp = l, stamp
				first = false
			}
		}
		delete(set, victimLine)
		victim, evicted = victimLine, true
	}
	set[line] = t.clock
	return victim, evicted
}

func (t *l2Table) remove(line sim.Line) {
	delete(t.setOf(line), line)
}

func (t *l2Table) len() int {
	n := 0
	for _, s := range t.slots {
		n += len(s)
	}
	return n
}
