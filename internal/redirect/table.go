package redirect

import (
	"fmt"

	"suvtm/internal/sim"
)

// Level says where a redirect-table lookup was satisfied.
type Level uint8

const (
	// LevelL1 is a first-level (per-core, zero-latency) table hit.
	LevelL1 Level = iota
	// LevelL2 is a shared second-level table hit.
	LevelL2
	// LevelMemory means the entry had been swapped out and the
	// software-managed structure in main memory was searched.
	LevelMemory
	// LevelAbsent means no entry exists for the line (a summary-signature
	// false positive, or a speculative use of the original address).
	LevelAbsent
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelMemory:
		return "memory"
	case LevelAbsent:
		return "absent"
	}
	return fmt.Sprintf("Level(%d)", uint8(l))
}

// l1Table is the per-core first-level redirect table: fully associative,
// LRU-replaced, zero access latency (it is integrated in the core's
// pipeline — Section IV-A). Transient entries of the running transaction
// are pinned; when every slot is pinned the table has overflowed.
//
// Entries live in a fixed way array; an open-addressed line→way index
// makes membership O(1). The eviction scan uses the same total order as
// the map implementation it replaced — minimum LRU stamp, ties broken
// by the smaller line — so the victim (and hence the whole simulation)
// is identical regardless of storage layout.
type l1Table struct {
	capacity int
	ways     []l1Way
	index    sim.LineMap[int32]
	free     []int32
	clock    uint64
	pinned   int
}

type l1Way struct {
	line   sim.Line
	lru    uint64
	live   bool
	pinned bool
}

func newL1Table(capacity int) *l1Table {
	t := &l1Table{
		capacity: capacity,
		ways:     make([]l1Way, capacity),
		free:     make([]int32, capacity),
	}
	for i := range t.free {
		t.free[i] = int32(capacity - 1 - i)
	}
	return t
}

// reset restores the table to its newL1Table state, reusing the way and
// free-stack storage. The free stack is rebuilt in construction order so
// a reset table hands out way indices in exactly the same sequence as a
// fresh one (way order is invisible to the simulation, but keeping it
// identical makes reuse trivially bit-safe).
func (t *l1Table) reset() {
	for i := range t.ways {
		t.ways[i] = l1Way{}
	}
	t.free = t.free[:t.capacity]
	for i := range t.free {
		t.free[i] = int32(t.capacity - 1 - i)
	}
	t.index.Clear()
	t.clock = 0
	t.pinned = 0
}

// peek reports presence without refreshing LRU — the side-effect-free
// probe PeekAbsent needs (contains would reorder the replacement clock
// on a hit).
//
//suv:hotpath
func (t *l1Table) peek(line sim.Line) bool {
	_, ok := t.index.Get(line)
	return ok
}

// contains refreshes LRU and reports presence.
//
//suv:hotpath
func (t *l1Table) contains(line sim.Line) bool {
	wi, ok := t.index.Get(line)
	if !ok {
		return false
	}
	t.clock++
	t.ways[wi].lru = t.clock
	return true
}

// insert places line in the table, evicting the LRU unpinned slot when
// full. It returns the evicted line and whether an eviction happened; if
// every slot is pinned the insert fails (overflow) and ok is false.
func (t *l1Table) insert(line sim.Line, pinned bool) (victim sim.Line, evicted, ok bool) {
	if wi, exists := t.index.Get(line); exists {
		w := &t.ways[wi]
		t.clock++
		w.lru = t.clock
		if pinned && !w.pinned {
			w.pinned = true
			t.pinned++
		}
		return 0, false, true
	}
	var wi int32
	if len(t.free) == 0 {
		vi := -1
		for i := range t.ways {
			w := &t.ways[i]
			if !w.live || w.pinned {
				continue
			}
			if vi < 0 || w.lru < t.ways[vi].lru || (w.lru == t.ways[vi].lru && w.line < t.ways[vi].line) {
				vi = i
			}
		}
		if vi < 0 {
			return 0, false, false // all pinned: table overflow
		}
		victim, evicted = t.ways[vi].line, true
		t.index.Delete(victim)
		wi = int32(vi)
	} else {
		wi = t.free[len(t.free)-1]
		t.free = t.free[:len(t.free)-1]
	}
	t.clock++
	t.ways[wi] = l1Way{line: line, lru: t.clock, live: true, pinned: pinned}
	t.index.Put(line, wi)
	if pinned {
		t.pinned++
	}
	return victim, evicted, true
}

// unpin clears the pinned flag (commit/abort of the owning transaction).
func (t *l1Table) unpin(line sim.Line) {
	if wi, ok := t.index.Get(line); ok && t.ways[wi].pinned {
		t.ways[wi].pinned = false
		t.pinned--
	}
}

// remove drops line from the table.
func (t *l1Table) remove(line sim.Line) {
	if wi, ok := t.index.Get(line); ok {
		if t.ways[wi].pinned {
			t.pinned--
		}
		t.ways[wi] = l1Way{}
		t.index.Delete(line)
		t.free = append(t.free, wi)
	}
}

func (t *l1Table) len() int { return t.index.Len() }

// l2Table is the shared second-level redirect table: set-associative,
// LRU-replaced, fixed access latency. Entries evicted here are swapped
// out to a software-managed structure in main memory.
//
// Each set is a fixed run of ways in one flat array — with the paper's
// 8-way geometry a lookup is a short linear scan over contiguous
// memory, and nothing on this path allocates. The eviction comparator
// (minimum stamp, ties to the smaller line) matches the map version's,
// keeping victims bit-identical.
type l2Table struct {
	sets  int
	ways  int
	slots []l2Way // sets*ways; set s occupies [s*ways, (s+1)*ways)
	clock uint64
	n     int
}

type l2Way struct {
	line  sim.Line
	stamp uint64
	live  bool
}

func newL2Table(entries, ways int) *l2Table {
	if ways <= 0 || entries < ways {
		panic("redirect: bad second-level table geometry")
	}
	sets := entries / ways
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("redirect: second-level table set count must be a power of two")
	}
	return &l2Table{sets: sets, ways: ways, slots: make([]l2Way, sets*ways)}
}

// reset empties every set, reusing the slot storage.
func (t *l2Table) reset() {
	for i := range t.slots {
		t.slots[i] = l2Way{}
	}
	t.clock = 0
	t.n = 0
}

//suv:hotpath
func (t *l2Table) setOf(line sim.Line) []l2Way {
	s := int(line) & (t.sets - 1)
	return t.slots[s*t.ways : (s+1)*t.ways]
}

// peek reports presence without refreshing the stamp (see l1Table.peek).
//
//suv:hotpath
func (t *l2Table) peek(line sim.Line) bool {
	set := t.setOf(line)
	for i := range set {
		if set[i].live && set[i].line == line {
			return true
		}
	}
	return false
}

//suv:hotpath
func (t *l2Table) contains(line sim.Line) bool {
	set := t.setOf(line)
	for i := range set {
		if set[i].live && set[i].line == line {
			t.clock++
			set[i].stamp = t.clock
			return true
		}
	}
	return false
}

// insert places line, evicting the set's LRU entry when full. The
// returned victim (if any) must be recorded as swapped out to memory.
func (t *l2Table) insert(line sim.Line) (victim sim.Line, evicted bool) {
	set := t.setOf(line)
	t.clock++
	target := -1
	for i := range set {
		if set[i].live && set[i].line == line {
			set[i].stamp = t.clock
			return 0, false
		}
		if !set[i].live && target < 0 {
			target = i
		}
	}
	if target < 0 {
		target = 0
		for i := 1; i < len(set); i++ {
			if set[i].stamp < set[target].stamp || (set[i].stamp == set[target].stamp && set[i].line < set[target].line) {
				target = i
			}
		}
		victim, evicted = set[target].line, true
		t.n--
	}
	set[target] = l2Way{line: line, stamp: t.clock, live: true}
	t.n++
	return victim, evicted
}

func (t *l2Table) remove(line sim.Line) {
	set := t.setOf(line)
	for i := range set {
		if set[i].live && set[i].line == line {
			set[i] = l2Way{}
			t.n--
			return
		}
	}
}

func (t *l2Table) len() int { return t.n }
