package redirect

import (
	"fmt"

	"suvtm/internal/sim"
)

// Audit cross-checks the redirect structures against each other and
// returns the first inconsistency found, or nil. It is the redirect half
// of the machine's periodic invariant checker: cheap enough to run every
// few hundred thousand cycles in debug runs, exhaustive enough to catch
// a fault-injection path that corrupts the mapping state.
//
// Invariants checked:
//  1. committed mappings target pairwise-distinct pool lines;
//  2. no committed mapping targets a line on the pool free list;
//  3. claimedBy values name a real core holding a TransientDelete entry
//     for that line (and vice versa);
//  4. transient adds target pool lines distinct from each other, from
//     every committed target, and from the free list;
//  5. every line recorded as swapped out still has a committed mapping.
func (r *Redirect) Audit() error {
	onFreeList := make(map[sim.Line]bool, len(r.pool.free))
	for _, l := range r.pool.free {
		onFreeList[l] = true
	}
	targets := make(map[sim.Line]string, r.global.Len())
	var err error
	r.global.ForEach(func(line sim.Line, g *globalEntry) {
		if err != nil {
			return
		}
		owner := fmt.Sprintf("global %#x", line)
		if prev, dup := targets[g.pool]; dup {
			err = fmt.Errorf("redirect audit: pool line %#x targeted by both %s and %s", g.pool, prev, owner)
			return
		}
		targets[g.pool] = owner
		if onFreeList[g.pool] {
			err = fmt.Errorf("redirect audit: %s targets pool line %#x that is on the free list", owner, g.pool)
			return
		}
		if g.claimedBy != -1 {
			if g.claimedBy < 0 || g.claimedBy >= r.cfg.Cores {
				err = fmt.Errorf("redirect audit: %s claimed by out-of-range core %d", owner, g.claimedBy)
				return
			}
			te, ok := r.trans[g.claimedBy].Get(line)
			if !ok || te.state != TransientDelete {
				err = fmt.Errorf("redirect audit: %s claimed by core %d without a transient delete", owner, g.claimedBy)
			}
		}
	})
	if err != nil {
		return err
	}
	for core := range r.trans {
		core := core
		r.trans[core].ForEach(func(line sim.Line, te *transEntry) {
			if err != nil {
				return
			}
			//suv:nonexhaustive the default turns impossible states into an audit error; panicking would bypass the report path
			switch te.state {
			case TransientAdd:
				owner := fmt.Sprintf("core %d transient add %#x", core, line)
				if prev, dup := targets[te.pool]; dup {
					err = fmt.Errorf("redirect audit: pool line %#x targeted by both %s and %s", te.pool, prev, owner)
					return
				}
				targets[te.pool] = owner
				if onFreeList[te.pool] {
					err = fmt.Errorf("redirect audit: %s targets pool line %#x that is on the free list", owner, te.pool)
				}
			case TransientDelete:
				g, ok := r.global.Get(line)
				if !ok {
					err = fmt.Errorf("redirect audit: core %d transient delete %#x has no committed mapping", core, line)
					return
				}
				if g.claimedBy != core {
					err = fmt.Errorf("redirect audit: core %d transient delete %#x but mapping claimed by %d", core, line, g.claimedBy)
				}
			default:
				err = fmt.Errorf("redirect audit: core %d entry %#x in impossible state %v", core, line, te.state)
			}
		})
	}
	if err != nil {
		return err
	}
	r.inMemory.ForEach(func(line sim.Line, _ *struct{}) {
		if err == nil && !r.global.Has(line) {
			err = fmt.Errorf("redirect audit: swapped-out entry %#x has no committed mapping", line)
		}
	})
	return err
}
