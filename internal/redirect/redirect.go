package redirect

import (
	"suvtm/internal/mem"
	"suvtm/internal/sim"
)

// Config sizes the redirect machinery (Table III defaults are in
// DefaultConfig).
type Config struct {
	Cores          int
	L1Entries      int        // first-level table entries per core (512)
	L2Entries      int        // shared second-level table entries (16384)
	L2Ways         int        // second-level associativity (8)
	L2Latency      sim.Cycles // second-level access latency (10)
	MemLatency     sim.Cycles // software search of swapped-out entries (150)
	MisspecPenalty sim.Cycles // squash/re-execute after wrong speculation (20)

	// DisableRedirectBack turns off the Section IV-A optimization that
	// reclaims original addresses (every re-redirect chains to a fresh
	// pool line instead). Used by the ablation study to quantify how much
	// the optimization bounds table growth.
	DisableRedirectBack bool
}

// DefaultConfig returns the paper's Table III redirect configuration for
// the given core count.
func DefaultConfig(cores int) Config {
	return Config{
		Cores:          cores,
		L1Entries:      512,
		L2Entries:      16384,
		L2Ways:         8,
		L2Latency:      10,
		MemLatency:     150,
		MisspecPenalty: 20,
	}
}

// journalKind tags per-transaction journal records.
type journalKind uint8

const (
	journalAdd   journalKind = iota // created a transient-add entry
	journalClaim                    // transiently deleted (claimed) a global entry
)

// journalRec is one record of the per-transaction entry journal. The
// journal makes commit and abort single flash operations over the
// transaction's transient entries.
type journalRec struct {
	kind journalKind
	line sim.Line
}

// StoreOutcome describes what a transactional store did to the redirect
// state.
type StoreOutcome struct {
	Target       sim.Line   // where the data must be written
	NewEntry     bool       // a transient-add entry was created
	RedirectBack bool       // a globally-valid entry was transiently deleted
	Chained      bool       // re-redirected an already-redirected line to a fresh pool line
	FillFrom     sim.Line   // line whose contents must seed Target
	NeedFill     bool       // Target holds stale data and needs the fill copy
	ExtraLatency sim.Cycles // table-maintenance latency (overflow handling)
	Overflowed   bool       // the first-level table could not pin the entry
	PoolReclaim  bool       // the pool line came from software reclamation (pool exhausted)
}

// LookupOutcome describes a timing lookup of the redirect table.
type LookupOutcome struct {
	Target        sim.Line // resolved physical line for the requesting core
	Found         bool     // a mapping (transient or global) applies
	Level         Level
	Latency       sim.Cycles
	Misspeculated bool // speculative use of the original address was wrong
}

// CommitEvent tells the caller how to update the redirect summary
// signature after an outermost commit (Figure 4(e) step 2). A replaced
// mapping (chained re-redirect) changes no summary state: the original
// address stays redirected.
type CommitEvent struct {
	Line    sim.Line
	Added   bool // line became redirected: Summary.Add
	Removed bool // line is no longer redirected: Summary.Delete
}

// globalEntry is a committed (global-valid, Table II) mapping. ClaimedBy
// is the core whose open transaction has transiently deleted it
// (redirect-back), or -1.
type globalEntry struct {
	pool      sim.Line
	claimedBy int
}

// transEntry is one core's private transient entry for a line: either a
// transient add (global=0, valid=1: writes go to pool) or a transient
// delete (global=1, valid=0: writes go back to the original address).
type transEntry struct {
	state State
	pool  sim.Line // transient add: private pool target
}

// Redirect is the machine-wide redirect state: the committed global map
// (physically spread over the two table levels and the swapped-out
// software structure), per-core private transient entries, the preserved
// pool, and per-core transaction journals with nesting support.
//
// Transient entries are core-private — they live in the owning core's
// first-level table — so concurrent (lazy, invisible) transactions may
// each redirect the same line privately; conflict resolution decides
// which one publishes at commit.
type Redirect struct {
	cfg      Config
	global   sim.LineMap[globalEntry]
	trans    []sim.LineMap[transEntry]
	pool     *Pool
	l1       []*l1Table
	l2       *l2Table
	inMemory sim.LineMap[struct{}] // global-entry lines resident only in the software structure

	journals   [][]journalRec
	frameMarks [][]int
	overflow   []bool // current transaction overflowed the first-level table
	eventsBuf  []CommitEvent

	// pressured simulates first-level entry pressure (the fault
	// injector's RedirectPressure window): pin refuses every insertion,
	// as if all slots were already pinned, forcing transactions through
	// the degenerated software-structure overflow path.
	pressured bool
}

// New creates the redirect state, drawing pool pages from alloc.
func New(cfg Config, alloc *mem.Allocator) *Redirect {
	r := &Redirect{
		cfg:  cfg,
		pool: NewPool(alloc),
		l2:   newL2Table(cfg.L2Entries, cfg.L2Ways),
	}
	r.trans = make([]sim.LineMap[transEntry], cfg.Cores)
	r.l1 = make([]*l1Table, cfg.Cores)
	for i := range r.l1 {
		r.l1[i] = newL1Table(cfg.L1Entries)
	}
	r.journals = make([][]journalRec, cfg.Cores)
	r.frameMarks = make([][]int, cfg.Cores)
	r.overflow = make([]bool, cfg.Cores)
	return r
}

// Reset rebuilds the redirect state for cfg on a (typically rewound)
// allocator, reusing the previous run's table storage wherever the
// geometry still matches and reallocating only what changed. A reset
// Redirect behaves identically to New(cfg, alloc) — the tables, pool,
// journals and summary-relevant maps all return to their freshly
// constructed state.
func (r *Redirect) Reset(cfg Config, alloc *mem.Allocator) {
	r.cfg = cfg
	r.pool.Reset(alloc)
	if r.l2.ways == cfg.L2Ways && r.l2.sets*r.l2.ways == cfg.L2Entries {
		r.l2.reset()
	} else {
		r.l2 = newL2Table(cfg.L2Entries, cfg.L2Ways)
	}
	if len(r.l1) == cfg.Cores {
		for i := range r.trans {
			r.trans[i].Clear()
			r.journals[i] = r.journals[i][:0]
			r.frameMarks[i] = r.frameMarks[i][:0]
			r.overflow[i] = false
		}
	} else {
		r.trans = make([]sim.LineMap[transEntry], cfg.Cores)
		r.l1 = make([]*l1Table, cfg.Cores)
		r.journals = make([][]journalRec, cfg.Cores)
		r.frameMarks = make([][]int, cfg.Cores)
		r.overflow = make([]bool, cfg.Cores)
	}
	for i, t := range r.l1 {
		if t != nil && t.capacity == cfg.L1Entries {
			t.reset()
		} else {
			r.l1[i] = newL1Table(cfg.L1Entries)
		}
	}
	r.global.Clear()
	r.inMemory.Clear()
	r.eventsBuf = r.eventsBuf[:0]
	r.pressured = false
}

// Config returns the configuration.
func (r *Redirect) Config() Config { return r.cfg }

// Pool exposes the preserved pool (stats, tests).
func (r *Redirect) Pool() *Pool { return r.pool }

// GlobalTarget returns the committed mapping for line (ok=false if the
// line is not redirected).
func (r *Redirect) GlobalTarget(line sim.Line) (sim.Line, bool) {
	g, ok := r.global.Get(line)
	return g.pool, ok
}

// TransientState returns the state of core's private entry for line
// (Free when none exists).
func (r *Redirect) TransientState(core int, line sim.Line) State {
	if te, ok := r.trans[core].Get(line); ok {
		return te.state
	}
	return Free
}

// EntryCount returns the number of live committed mappings.
func (r *Redirect) EntryCount() int { return r.global.Len() }

// TransientCount returns core's live transient entries (tests).
func (r *Redirect) TransientCount(core int) int { return r.trans[core].Len() }

// SwappedOut returns the number of entry lines resident only in memory.
func (r *Redirect) SwappedOut() int { return r.inMemory.Len() }

// Resolve returns the physical line an access by core to line must use,
// with no timing side effects: the core's own transient entry if any,
// else the committed mapping. Pass core = -1 for the architectural
// (post-commit) view.
//
//suv:hotpath
func (r *Redirect) Resolve(core int, line sim.Line) sim.Line {
	if core >= 0 {
		if te, ok := r.trans[core].Get(line); ok {
			if te.state == TransientAdd {
				return te.pool
			}
			return line // TransientDelete: owner sees the original
		}
	}
	if g, ok := r.global.Get(line); ok {
		return g.pool
	}
	return line
}

// PeekAbsent reports whether core's access to line would take the
// zero-latency absent path through Lookup: no transient entry of core's,
// no committed mapping, and neither hardware table caches the line. The
// probe itself is completely side-effect-free (the table peeks skip the
// LRU refresh a contains hit would perform), so the parallel window
// engine can use it to certify accesses the summary signature flagged
// only by aliasing — the walk those accesses later replay is pure too,
// since every mutating arm of Lookup is behind a presence test this
// probe just answered negatively.
func (r *Redirect) PeekAbsent(core int, line sim.Line) bool {
	return !r.trans[core].Has(line) && !r.global.Has(line) &&
		!r.l1[core].peek(line) && !r.l2.peek(line)
}

// Lookup performs a timing-accurate redirect-table walk for core's access
// to line. It should be called only when the summary signature (or the
// core's write signature) indicated a possible redirection.
//
//suv:hotpath
func (r *Redirect) Lookup(core int, line sim.Line) LookupOutcome {
	target := r.Resolve(core, line)
	isTrans := r.trans[core].Has(line)
	isGlobal := r.global.Has(line)
	found := isTrans || isGlobal
	if r.l1[core].contains(line) {
		return LookupOutcome{Target: target, Found: found, Level: LevelL1}
	}
	if r.l2.contains(line) {
		r.fillL1(core, line, false)
		return LookupOutcome{Target: target, Found: found, Level: LevelL2, Latency: r.cfg.L2Latency}
	}
	// Both hardware levels missed.
	if isTrans {
		// A core's own transient entries live in its first-level table by
		// construction; reaching here means the table overflowed and the
		// entry sits in the software-managed structure. Cache it in the
		// shared level so repeated touches pay second-level latency only.
		r.fillL2(line)
		return LookupOutcome{Target: target, Found: true, Level: LevelMemory,
			Latency: r.cfg.MemLatency}
	}
	// SUV speculatively uses the original address while the remaining
	// search proceeds off the critical path (Section IV-A); when no entry
	// exists the speculation is correct and the whole confirmation
	// latency is hidden.
	if !isGlobal {
		return LookupOutcome{Target: target, Level: LevelAbsent}
	}
	if r.inMemory.Has(line) {
		// The entry really is swapped out: the speculative access to the
		// original address was wrong and must be squashed.
		r.inMemory.Delete(line)
		r.fillL2(line)
		r.fillL1(core, line, false)
		return LookupOutcome{Target: target, Found: true, Level: LevelMemory,
			Latency: r.cfg.MemLatency + r.cfg.MisspecPenalty, Misspeculated: true}
	}
	// The entry exists but sits in another core's first-level table
	// (table coherence forwards it at roughly second-level cost).
	r.fillL2(line)
	r.fillL1(core, line, false)
	return LookupOutcome{Target: target, Found: true, Level: LevelL2, Latency: r.cfg.L2Latency}
}

// TxStore applies the redirect-state transition for a transactional store
// by core to line, journaling it for flash commit/abort:
//
//   - no mapping: create a private transient add (line -> fresh pool line),
//     seeded by the normal write-miss fill;
//   - committed mapping, original space unclaimed: redirect back — claim
//     the entry, write at the original address (Figure 4(d));
//   - committed mapping already claimed by another transaction: chain to
//     a fresh pool line (both writers stay physically disjoint; commit
//     arbitration decides who publishes);
//   - own transient entry: reuse its target.
func (r *Redirect) TxStore(core int, line sim.Line) StoreOutcome {
	if len(r.frameMarks[core]) == 0 {
		panic("redirect: TxStore outside a transaction frame")
	}
	if te, ok := r.trans[core].Get(line); ok {
		if te.state == TransientAdd {
			return StoreOutcome{Target: te.pool}
		}
		return StoreOutcome{Target: line}
	}
	g := r.global.Ref(line)
	switch {
	case g == nil:
		poolLine := r.pool.Alloc()
		r.trans[core].Put(line, transEntry{state: TransientAdd, pool: poolLine})
		r.journals[core] = append(r.journals[core], journalRec{kind: journalAdd, line: line})
		out := StoreOutcome{Target: poolLine, NewEntry: true, FillFrom: line, NeedFill: true,
			PoolReclaim: r.pool.Exhausted()}
		r.pin(core, line, &out)
		return out

	case !r.cfg.DisableRedirectBack && (g.claimedBy < 0 || g.claimedBy == core):
		// Redirect-back (Figure 4(d)): the variable currently lives at
		// g.pool; the new version goes back to the original address.
		g.claimedBy = core
		fillFrom := g.pool
		r.trans[core].Put(line, transEntry{state: TransientDelete})
		r.journals[core] = append(r.journals[core], journalRec{kind: journalClaim, line: line})
		out := StoreOutcome{Target: line, RedirectBack: true, FillFrom: fillFrom, NeedFill: true}
		r.pin(core, line, &out)
		return out

	default:
		// The original space is claimed by another in-flight transaction:
		// chain to a fresh pool line.
		poolLine := r.pool.Alloc()
		fillFrom := g.pool
		r.trans[core].Put(line, transEntry{state: TransientAdd, pool: poolLine})
		r.journals[core] = append(r.journals[core], journalRec{kind: journalAdd, line: line})
		out := StoreOutcome{Target: poolLine, NewEntry: true, Chained: true, FillFrom: fillFrom, NeedFill: true,
			PoolReclaim: r.pool.Exhausted()}
		r.pin(core, line, &out)
		return out
	}
}

// pin places the entry in core's first-level table, pinned for the
// duration of the transaction; on overflow the entry lives in the shared
// levels and the store pays the second-level latency.
func (r *Redirect) pin(core int, line sim.Line, out *StoreOutcome) {
	ok := false
	if !r.pressured {
		var victim sim.Line
		var evicted bool
		victim, evicted, ok = r.l1[core].insert(line, true)
		if evicted {
			r.spillToL2(victim)
		}
	}
	if !ok {
		r.overflow[core] = true
		out.Overflowed = true
		out.ExtraLatency += r.cfg.L2Latency
	}
}

// BeginFrame opens a (possibly nested) transaction frame for core.
func (r *Redirect) BeginFrame(core int) {
	r.frameMarks[core] = append(r.frameMarks[core], len(r.journals[core]))
	if len(r.frameMarks[core]) == 1 {
		r.overflow[core] = false
	}
}

// InFrame reports whether core has an open frame (tests).
func (r *Redirect) InFrame(core int) bool { return len(r.frameMarks[core]) > 0 }

// CommitFrame closes core's innermost frame. Committing a nested frame
// merges its journal into the parent (entries stay transient until the
// outermost commit). Committing the outermost frame flash-converts every
// journaled entry per Figure 4(e) and returns the summary-signature
// events.
func (r *Redirect) CommitFrame(core int) []CommitEvent {
	marks := r.frameMarks[core]
	if len(marks) == 0 {
		panic("redirect: CommitFrame without a frame")
	}
	if len(marks) > 1 {
		r.frameMarks[core] = marks[:len(marks)-1]
		return nil
	}
	events := r.applyCommit(core, r.journals[core])
	r.journals[core] = r.journals[core][:0]
	r.frameMarks[core] = marks[:0]
	r.overflow[core] = false
	return events
}

// CommitOpenFrame publishes the innermost frame's journal immediately
// (open nesting): its transient entries take the Figure 4(e)
// transitions now, while outer frames stay speculative.
func (r *Redirect) CommitOpenFrame(core int) []CommitEvent {
	marks := r.frameMarks[core]
	if len(marks) == 0 {
		panic("redirect: CommitOpenFrame without a frame")
	}
	mark := marks[len(marks)-1]
	events := r.applyCommit(core, r.journals[core][mark:])
	r.journals[core] = r.journals[core][:mark]
	r.frameMarks[core] = marks[:len(marks)-1]
	return events
}

// applyCommit runs the Figure 4(e) transitions over journal records.
// The returned slice aliases a buffer owned by the Redirect and is
// valid until the next commit; callers consume it immediately.
//
//suv:hotpath
func (r *Redirect) applyCommit(core int, journal []journalRec) []CommitEvent {
	events := r.eventsBuf[:0]
	for _, rec := range journal {
		te, ok := r.trans[core].Get(rec.line)
		if !ok {
			continue // unwound by a partial abort
		}
		switch rec.kind {
		case journalAdd:
			if g := r.global.Ref(rec.line); g != nil {
				// Chained re-redirect: the new mapping replaces the old;
				// the line stays redirected, so no summary change.
				r.pool.Release(g.pool)
				g.pool = te.pool
				g.claimedBy = -1
			} else {
				r.global.Put(rec.line, globalEntry{pool: te.pool, claimedBy: -1})
				events = append(events, CommitEvent{Line: rec.line, Added: true})
			}
			r.l1[core].unpin(rec.line)
		case journalClaim:
			if g, had := r.global.Get(rec.line); had && g.claimedBy == core {
				r.pool.Release(g.pool)
				r.dropGlobal(rec.line)
				events = append(events, CommitEvent{Line: rec.line, Removed: true})
			}
		}
		r.trans[core].Delete(rec.line)
	}
	r.eventsBuf = events
	return events
}

// AbortFrame unwinds core's innermost frame per Figure 4(f): transient
// adds vanish (their pool lines are recycled), transient deletes revert
// to globally valid. It returns the number of entries unwound.
func (r *Redirect) AbortFrame(core int) int {
	marks := r.frameMarks[core]
	if len(marks) == 0 {
		panic("redirect: AbortFrame without a frame")
	}
	mark := marks[len(marks)-1]
	journal := r.journals[core]
	n := len(journal) - mark
	for i := len(journal) - 1; i >= mark; i-- {
		rec := journal[i]
		te, ok := r.trans[core].Get(rec.line)
		if !ok {
			continue
		}
		switch rec.kind {
		case journalAdd:
			r.pool.Release(te.pool)
			r.l1[core].remove(rec.line)
		case journalClaim:
			if g := r.global.Ref(rec.line); g != nil && g.claimedBy == core {
				g.claimedBy = -1
			}
			r.l1[core].unpin(rec.line)
		}
		r.trans[core].Delete(rec.line)
	}
	r.journals[core] = journal[:mark]
	r.frameMarks[core] = marks[:len(marks)-1]
	if len(r.frameMarks[core]) == 0 {
		r.overflow[core] = false
	}
	return n
}

// TxOverflowed reports whether core's current transaction overflowed the
// first-level table (Table V statistics).
func (r *Redirect) TxOverflowed(core int) bool { return r.overflow[core] }

// SetPressure forces (or releases) first-level entry pressure; see the
// field comment.
func (r *Redirect) SetPressure(on bool) { r.pressured = on }

// Pressured reports whether injected entry pressure is active.
func (r *Redirect) Pressured() bool { return r.pressured }

// fillL1 caches an entry line in core's first-level table (unpinned).
func (r *Redirect) fillL1(core int, line sim.Line, pinned bool) {
	victim, evicted, _ := r.l1[core].insert(line, pinned)
	if evicted {
		r.spillToL2(victim)
	}
}

// fillL2 caches an entry line in the second level, spilling its victim to
// the software structure in memory.
func (r *Redirect) fillL2(line sim.Line) {
	victim, evicted := r.l2.insert(line)
	if evicted {
		if r.global.Has(victim) {
			r.inMemory.Put(victim, struct{}{})
		}
	}
	r.inMemory.Delete(line)
}

// spillToL2 writes an entry evicted from a first-level table back to the
// shared level, unless the mapping no longer exists.
func (r *Redirect) spillToL2(line sim.Line) {
	if r.global.Has(line) {
		r.fillL2(line)
	}
}

// dropGlobal removes a committed mapping from every structure.
func (r *Redirect) dropGlobal(line sim.Line) {
	r.global.Delete(line)
	for _, t := range r.l1 {
		t.remove(line)
	}
	r.l2.remove(line)
	r.inMemory.Delete(line)
}
