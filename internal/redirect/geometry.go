package redirect

import (
	"math/bits"

	"suvtm/internal/mem"
	"suvtm/internal/sim"
)

// Geometry reproduces the redirect-entry bit layout of Figure 3 and the
// per-core storage arithmetic of Section V-C. A first-level entry does
// not store full addresses: the original address is reconstructed from
// the stored L1 data-cache set-index bits plus the cache tag, and the
// redirected address from a TLB index (the preserved-pool page) plus an
// in-page line offset.
type Geometry struct {
	L1IndexBits  int // L1 data-cache set-index bits stored in the entry
	StateBits    int // global + valid (Table II)
	TLBIndexBits int // index into the TLB entry holding the pool page
	OffsetBits   int // in-page line offset
}

// NewGeometry derives the entry layout from the L1 data-cache geometry
// and the TLB size.
func NewGeometry(l1 mem.CacheConfig, tlbEntries int) Geometry {
	return Geometry{
		L1IndexBits:  bits.Len(uint(l1.Sets()) - 1),
		StateBits:    2,
		TLBIndexBits: bits.Len(uint(tlbEntries) - 1),
		OffsetBits:   bits.Len(uint(mem.PageBytes/sim.LineBytes) - 1),
	}
}

// EntryBits returns the total first-level entry size in bits (22 in the
// paper's configuration: 7-bit L1 index + 2-bit state + 6-bit TLB index +
// 7-bit in-page offset).
func (g Geometry) EntryBits() int {
	return g.L1IndexBits + g.StateBits + g.TLBIndexBits + g.OffsetBits
}

// PerCoreStorageBytes returns the per-core SUV memory-element cost of
// Section V-C: the redirect summary signature, its companion bit-vector
// and the first-level table payload. The paper's configuration
// (2 Kbit + 2 Kbit + 22 b x 512) yields 1.875 KiB ~ 5.86% of a 32 KiB L1.
func (g Geometry) PerCoreStorageBytes(summaryBits, onceBits uint32, l1Entries int) float64 {
	totalBits := float64(summaryBits) + float64(onceBits) + float64(g.EntryBits()*l1Entries)
	return totalBits / 8
}
