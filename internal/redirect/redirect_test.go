package redirect

import (
	"testing"
	"testing/quick"

	"suvtm/internal/mem"
	"suvtm/internal/sim"
)

func testRedirect(cores, l1Entries int) *Redirect {
	cfg := Config{
		Cores: cores, L1Entries: l1Entries,
		L2Entries: 64, L2Ways: 4, L2Latency: 10, MemLatency: 150, MisspecPenalty: 20,
	}
	alloc := mem.NewAllocator(0x8000_0000, 1<<30)
	return New(cfg, alloc)
}

func TestTxStoreCreatesTransientAdd(t *testing.T) {
	r := testRedirect(2, 8)
	r.BeginFrame(0)
	out := r.TxStore(0, 100)
	if !out.NewEntry || !out.NeedFill || out.FillFrom != 100 {
		t.Fatalf("outcome = %+v", out)
	}
	if st := r.TransientState(0, 100); st != TransientAdd {
		t.Fatalf("state = %v", st)
	}
	// Owner resolves to the pool line, others to the original.
	if r.Resolve(0, 100) != out.Target {
		t.Fatal("owner not redirected")
	}
	if r.Resolve(1, 100) != 100 {
		t.Fatal("non-owner redirected by a transient add")
	}
	if _, global := r.GlobalTarget(100); global {
		t.Fatal("transient add visible globally before commit")
	}
}

func TestCommitPublishesAndSummaryEvents(t *testing.T) {
	r := testRedirect(2, 8)
	r.BeginFrame(0)
	out := r.TxStore(0, 100)
	events := r.CommitFrame(0)
	if len(events) != 1 || !events[0].Added || events[0].Line != 100 {
		t.Fatalf("events = %+v", events)
	}
	if target, ok := r.GlobalTarget(100); !ok || target != out.Target {
		t.Fatalf("global mapping = (%d,%v)", target, ok)
	}
	if r.Resolve(1, 100) != out.Target {
		t.Fatal("committed redirect invisible to other cores")
	}
	if r.TransientCount(0) != 0 {
		t.Fatal("transient entry survived commit")
	}
}

func TestAbortDiscardsTransientAdd(t *testing.T) {
	r := testRedirect(2, 8)
	r.BeginFrame(0)
	r.TxStore(0, 100)
	freeBefore := r.Pool().FreeLines()
	if n := r.AbortFrame(0); n != 1 {
		t.Fatalf("unwound %d entries", n)
	}
	if r.TransientState(0, 100) != Free {
		t.Fatal("aborted entry survived")
	}
	if r.Pool().FreeLines() != freeBefore+1 {
		t.Fatal("pool line not recycled")
	}
	if r.Resolve(0, 100) != 100 {
		t.Fatal("aborted redirect still resolves")
	}
}

func TestRedirectBackLifecycle(t *testing.T) {
	r := testRedirect(2, 8)
	// Transaction 1: redirect 100 -> P.
	r.BeginFrame(0)
	p := r.TxStore(0, 100).Target
	r.CommitFrame(0)

	// Transaction 2 (another core): store redirects back to the original.
	r.BeginFrame(1)
	out := r.TxStore(1, 100)
	if !out.RedirectBack || out.Target != 100 || out.FillFrom != p || !out.NeedFill {
		t.Fatalf("redirect-back outcome = %+v", out)
	}
	if st := r.TransientState(1, 100); st != TransientDelete {
		t.Fatalf("state = %v", st)
	}
	// Owner sees the original, others still follow the old mapping.
	if r.Resolve(1, 100) != 100 || r.Resolve(0, 100) != p {
		t.Fatal("TransientDelete visibility wrong")
	}

	events := r.CommitFrame(1)
	if len(events) != 1 || !events[0].Removed {
		t.Fatalf("events = %+v", events)
	}
	if _, ok := r.GlobalTarget(100); ok {
		t.Fatal("mapping survived committed redirect-back")
	}
	if r.EntryCount() != 0 {
		t.Fatal("entry count should return to zero (the paper's growth control)")
	}
}

func TestRedirectBackAbortRestoresGlobal(t *testing.T) {
	r := testRedirect(2, 8)
	r.BeginFrame(0)
	p := r.TxStore(0, 100).Target
	r.CommitFrame(0)

	r.BeginFrame(0)
	r.TxStore(0, 100) // redirect-back
	r.AbortFrame(0)
	if target, ok := r.GlobalTarget(100); !ok || target != p {
		t.Fatalf("mapping after abort = (%d,%v), want (%d,true)", target, ok, p)
	}
	if r.Resolve(0, 100) != p {
		t.Fatal("mapping not restored after abort")
	}
}

func TestRepeatedStoreSameTxReusesEntry(t *testing.T) {
	r := testRedirect(1, 8)
	r.BeginFrame(0)
	first := r.TxStore(0, 50)
	second := r.TxStore(0, 50)
	if second.NewEntry || second.NeedFill || second.Target != first.Target {
		t.Fatalf("second store outcome = %+v", second)
	}
	if r.TransientCount(0) != 1 {
		t.Fatal("duplicate entries for one line")
	}
}

// TestConcurrentTransientsStayDisjoint checks the lazy-transaction case:
// two cores privately redirect the same line to different pool lines and
// the committer publishes while the loser's state unwinds cleanly.
func TestConcurrentTransientsStayDisjoint(t *testing.T) {
	r := testRedirect(2, 8)
	r.BeginFrame(0)
	r.BeginFrame(1)
	a := r.TxStore(0, 77)
	b := r.TxStore(1, 77)
	if a.Target == b.Target {
		t.Fatal("concurrent writers share a physical line")
	}
	if r.Resolve(0, 77) != a.Target || r.Resolve(1, 77) != b.Target {
		t.Fatal("private visibility broken")
	}
	events := r.CommitFrame(0)
	if len(events) != 1 || !events[0].Added {
		t.Fatalf("committer events = %+v", events)
	}
	if target, _ := r.GlobalTarget(77); target != a.Target {
		t.Fatal("wrong mapping published")
	}
	// The loser aborts; the published mapping must survive.
	r.AbortFrame(1)
	if target, ok := r.GlobalTarget(77); !ok || target != a.Target {
		t.Fatal("loser's abort damaged the published mapping")
	}
}

// TestChainedRedirect checks re-redirecting a line whose original space
// is claimed: the second writer chains to a fresh pool line seeded from
// the committed version, and its commit replaces the mapping without
// summary churn.
func TestChainedRedirect(t *testing.T) {
	r := testRedirect(3, 8)
	r.BeginFrame(0)
	p := r.TxStore(0, 9).Target
	r.CommitFrame(0)

	// Core 1 claims the original space (redirect-back)...
	r.BeginFrame(1)
	if out := r.TxStore(1, 9); !out.RedirectBack {
		t.Fatalf("claimant outcome = %+v", out)
	}
	// ...so core 2 must chain.
	r.BeginFrame(2)
	out := r.TxStore(2, 9)
	if !out.Chained || !out.NewEntry || out.FillFrom != p || out.Target == p || out.Target == 9 {
		t.Fatalf("chained outcome = %+v", out)
	}
	// Core 2 commits first: mapping replaced, line stays redirected, no
	// Added/Removed events.
	if events := r.CommitFrame(2); len(events) != 0 {
		t.Fatalf("chained commit events = %+v", events)
	}
	if target, ok := r.GlobalTarget(9); !ok || target != out.Target {
		t.Fatalf("mapping = (%d,%v), want %d", target, ok, out.Target)
	}
	// The claimant (which conflict resolution would have doomed) aborts;
	// its stale claim must not disturb the replaced mapping.
	r.AbortFrame(1)
	if target, ok := r.GlobalTarget(9); !ok || target != out.Target {
		t.Fatal("claimant abort corrupted the replaced mapping")
	}
}

// TestClaimCommitFirst covers the other arbitration order: the claimant
// publishes its redirect-back and the chained loser unwinds.
func TestClaimCommitFirst(t *testing.T) {
	r := testRedirect(3, 8)
	r.BeginFrame(0)
	r.TxStore(0, 9)
	r.CommitFrame(0)

	r.BeginFrame(1)
	r.TxStore(1, 9) // claim
	r.BeginFrame(2)
	chained := r.TxStore(2, 9)
	if !chained.Chained {
		t.Fatalf("outcome = %+v", chained)
	}

	events := r.CommitFrame(1)
	if len(events) != 1 || !events[0].Removed {
		t.Fatalf("claimant commit events = %+v", events)
	}
	if _, ok := r.GlobalTarget(9); ok {
		t.Fatal("mapping survived committed redirect-back")
	}
	r.AbortFrame(2)
	if r.TransientCount(2) != 0 {
		t.Fatal("chained loser left transient state")
	}
}

func TestNestedFramesPartialAbort(t *testing.T) {
	r := testRedirect(1, 16)
	r.BeginFrame(0)
	outerOut := r.TxStore(0, 10)
	r.BeginFrame(0) // nested
	r.TxStore(0, 20)
	r.AbortFrame(0) // abort inner only
	if r.TransientState(0, 20) != Free {
		t.Fatal("inner entry survived partial abort")
	}
	if r.TransientState(0, 10) != TransientAdd {
		t.Fatal("outer entry damaged by partial abort")
	}
	events := r.CommitFrame(0)
	if len(events) != 1 || events[0].Line != 10 {
		t.Fatalf("outer commit events = %+v", events)
	}
	if r.Resolve(0, 10) != outerOut.Target {
		t.Fatal("outer mapping lost")
	}
}

func TestNestedCommitMergesIntoParent(t *testing.T) {
	r := testRedirect(1, 16)
	r.BeginFrame(0)
	r.BeginFrame(0)
	r.TxStore(0, 30)
	if ev := r.CommitFrame(0); ev != nil {
		t.Fatalf("nested commit published events: %+v", ev)
	}
	if r.TransientState(0, 30) != TransientAdd {
		t.Fatal("inner entry not merged as transient")
	}
	// Aborting the outer frame must now unwind the merged entry.
	r.AbortFrame(0)
	if r.TransientState(0, 30) != Free {
		t.Fatal("merged entry survived outer abort")
	}
}

func TestL1TableOverflowFlag(t *testing.T) {
	r := testRedirect(1, 4)
	r.BeginFrame(0)
	for i := sim.Line(0); i < 4; i++ {
		if out := r.TxStore(0, 1000+i); out.Overflowed {
			t.Fatalf("premature overflow at entry %d", i)
		}
	}
	out := r.TxStore(0, 2000)
	if !out.Overflowed || !r.TxOverflowed(0) {
		t.Fatal("fifth pinned entry did not overflow a 4-entry table")
	}
	r.CommitFrame(0)
	if r.TxOverflowed(0) {
		t.Fatal("overflow flag survived commit")
	}
}

func TestLookupLevelsAndLatency(t *testing.T) {
	r := testRedirect(2, 2)
	r.BeginFrame(0)
	r.TxStore(0, 1)
	r.TxStore(0, 2)
	r.CommitFrame(0)

	// Core 0 has both entries in its first-level table: zero latency.
	if out := r.Lookup(0, 1); out.Level != LevelL1 || out.Latency != 0 || !out.Found {
		t.Fatalf("lookup = %+v", out)
	}
	// Core 1 misses its first level and pays the shared-level latency.
	out := r.Lookup(1, 1)
	if out.Level == LevelL1 || out.Latency == 0 {
		t.Fatalf("core 1 lookup = %+v", out)
	}
	// Second probe hits core 1's first level.
	if out := r.Lookup(1, 1); out.Level != LevelL1 {
		t.Fatalf("second lookup = %+v", out)
	}
	// Absent lines: speculative use of the original address hides the
	// confirmation latency.
	if out := r.Lookup(0, 999); out.Level != LevelAbsent || out.Latency != 0 || out.Found {
		t.Fatalf("absent lookup = %+v", out)
	}
}

func TestSwappedOutEntriesCostMemoryLookup(t *testing.T) {
	cfg := Config{Cores: 1, L1Entries: 2, L2Entries: 4, L2Ways: 2, L2Latency: 10, MemLatency: 150, MisspecPenalty: 20}
	alloc := mem.NewAllocator(0x8000_0000, 1<<30)
	r := New(cfg, alloc)
	// Create many global entries so some spill to the software structure.
	for i := sim.Line(0); i < 12; i++ {
		r.BeginFrame(0)
		r.TxStore(0, 100+i)
		r.CommitFrame(0)
	}
	if r.SwappedOut() == 0 {
		t.Fatal("no entries swapped out despite tiny tables")
	}
	found := false
	for i := sim.Line(0); i < 12; i++ {
		out := r.Lookup(0, 100+i)
		if out.Level == LevelMemory {
			found = true
			if !out.Misspeculated || out.Latency != 170 {
				t.Fatalf("memory lookup = %+v", out)
			}
			break
		}
	}
	if !found {
		t.Fatal("no lookup reached the software structure")
	}
}

// TestEntryCountStableUnderChurn property-checks the paper's growth
// argument: alternating redirect and redirect-back keeps the entry count
// bounded by the working set.
func TestEntryCountStableUnderChurn(t *testing.T) {
	f := func(ops []uint8) bool {
		r := testRedirect(1, 64)
		for _, op := range ops {
			line := sim.Line(op % 16)
			r.BeginFrame(0)
			r.TxStore(0, line)
			if op%5 == 0 {
				r.AbortFrame(0)
			} else {
				r.CommitFrame(0)
			}
			if r.EntryCount() > 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPoolLinesNeverLeak property-checks pool accounting: after any
// sequence of fully committed/aborted single-line transactions, live
// mappings plus free-list lines account for every allocated line.
func TestPoolLinesNeverLeak(t *testing.T) {
	f := func(ops []uint8) bool {
		r := testRedirect(2, 64)
		for _, op := range ops {
			core := int(op>>6) % 2
			line := sim.Line(op % 8)
			r.BeginFrame(core)
			r.TxStore(core, line)
			if op%3 == 0 {
				r.AbortFrame(core)
			} else {
				r.CommitFrame(core)
			}
		}
		// No open frames: transients must all be gone.
		return r.TransientCount(0) == 0 && r.TransientCount(1) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolRecycling(t *testing.T) {
	alloc := mem.NewAllocator(0x8000_0000, 1<<30)
	p := NewPool(alloc)
	a := p.Alloc()
	b := p.Alloc()
	if a == b {
		t.Fatal("duplicate pool lines")
	}
	p.Release(a)
	if c := p.Alloc(); c != a {
		t.Fatalf("free list not reused: got %d want %d", c, a)
	}
	// Pages are claimed a stripe-spread group at a time.
	if p.Pages() != 16 {
		t.Fatalf("pages = %d", p.Pages())
	}
	for i := 0; i < 16*mem.PageBytes/sim.LineBytes; i++ {
		p.Alloc()
	}
	if p.Pages() != 32 {
		t.Fatalf("pages after exhaustion = %d", p.Pages())
	}
}

// TestPoolStripeInterleave: consecutive pool lines land on different
// 64 KB stripes — the bank-spreading property the parallel window
// engine depends on (see the Pool type comment).
func TestPoolStripeInterleave(t *testing.T) {
	alloc := mem.NewAllocator(0x8000_0000, 1<<30)
	p := NewPool(alloc)
	stripes := make(map[uint64]bool)
	for i := 0; i < 16; i++ {
		stripes[uint64(sim.AddrOf(p.Alloc()))/PoolInterleave] = true
	}
	if len(stripes) != 16 {
		t.Fatalf("16 consecutive pool lines cover %d stripes, want 16", len(stripes))
	}
}

func TestGeometryMatchesPaper(t *testing.T) {
	g := NewGeometry(mem.CacheConfig{SizeBytes: 32 << 10, Ways: 4}, 64)
	if g.L1IndexBits != 7 || g.StateBits != 2 || g.TLBIndexBits != 6 || g.OffsetBits != 7 {
		t.Fatalf("geometry = %+v", g)
	}
	if g.EntryBits() != 22 {
		t.Fatalf("entry bits = %d, want 22", g.EntryBits())
	}
	bytes := g.PerCoreStorageBytes(2048, 2048, 512)
	if bytes != 1920 { // 1.875 KiB, Section V-C
		t.Fatalf("per-core storage = %v bytes, want 1920", bytes)
	}
}

func TestTxStoreOutsideFramePanics(t *testing.T) {
	r := testRedirect(1, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("TxStore without a frame did not panic")
		}
	}()
	r.TxStore(0, 1)
}
