package redirect

import "testing"

func TestStateBitsRoundTrip(t *testing.T) {
	for _, s := range []State{Free, GlobalValid, TransientAdd, TransientDelete} {
		g, v := s.Bits()
		if StateFromBits(g, v) != s {
			t.Fatalf("round trip failed for %v", s)
		}
	}
}

func TestTableIIEncoding(t *testing.T) {
	// Table II: global=1 states are visible beyond the transaction;
	// global=0 states are transactional transients.
	cases := []struct {
		state         State
		global, valid bool
	}{
		{Free, false, false},
		{GlobalValid, true, true},
		{TransientAdd, false, true},
		{TransientDelete, true, false},
	}
	for _, c := range cases {
		g, v := c.state.Bits()
		if g != c.global || v != c.valid {
			t.Errorf("%v bits = (%v,%v), want (%v,%v)", c.state, g, v, c.global, c.valid)
		}
	}
}

func TestTargetForVisibility(t *testing.T) {
	e := &Entry{Orig: 10, Pool: 20, Owner: 1}

	e.state = GlobalValid
	if e.TargetFor(0) != 20 || e.TargetFor(1) != 20 {
		t.Fatal("GlobalValid must redirect everyone")
	}

	e.state = TransientAdd
	if e.TargetFor(1) != 20 {
		t.Fatal("TransientAdd must redirect the owner")
	}
	if e.TargetFor(0) != 10 {
		t.Fatal("TransientAdd must not redirect other cores")
	}

	e.state = TransientDelete
	if e.TargetFor(1) != 10 {
		t.Fatal("TransientDelete owner must see the original")
	}
	if e.TargetFor(0) != 20 {
		t.Fatal("TransientDelete must keep redirecting other cores")
	}

	e.state = Free
	if e.TargetFor(0) != 10 {
		t.Fatal("Free entry must not redirect")
	}
}

// TestFig4eCommitTransitions checks the commit rule: valid=1 publishes
// (global 0->1), valid=0 frees (global 1->0).
func TestFig4eCommitTransitions(t *testing.T) {
	cases := []struct{ from, to State }{
		{TransientAdd, GlobalValid},
		{TransientDelete, Free},
		{GlobalValid, GlobalValid},
	}
	for _, c := range cases {
		e := &Entry{state: c.from}
		if got := e.CommitState(); got != c.to {
			t.Errorf("commit %v -> %v, want %v", c.from, got, c.to)
		}
	}
}

// TestFig4fAbortTransitions checks the abort rule: global=1 restores the
// valid bit, global=0 frees.
func TestFig4fAbortTransitions(t *testing.T) {
	cases := []struct{ from, to State }{
		{TransientAdd, Free},
		{TransientDelete, GlobalValid},
		{GlobalValid, GlobalValid},
	}
	for _, c := range cases {
		e := &Entry{state: c.from}
		if got := e.AbortState(); got != c.to {
			t.Errorf("abort %v -> %v, want %v", c.from, got, c.to)
		}
	}
}
