// Package redirect implements SUV's single-update version-management
// machinery: redirect entries with the four states of Table II, the
// preserved redirect pool, the two-level redirect table (a zero-latency
// 512-entry fully-associative first level per core and a 10-cycle
// 16K-entry 8-way shared second level — Table III) with software-managed
// overflow to memory, the per-transaction journal that makes commit and
// abort single flash operations, and the redirect-back optimization that
// keeps the table small under repeated updates to the same variable.
package redirect

import (
	"fmt"

	"suvtm/internal/sim"
)

// State is a redirect entry's state, encoded by the (global, valid) bit
// pair of Table II.
type State uint8

const (
	// Free is (global=0, valid=0): the slot holds no mapping.
	Free State = iota
	// GlobalValid is (global=1, valid=1): the mapping applies to all
	// memory accesses, inside and outside transactions.
	GlobalValid
	// TransientAdd is (global=0, valid=1): the mapping was created by a
	// still-running transaction and applies only to its own accesses.
	TransientAdd
	// TransientDelete is (global=1, valid=0): a globally valid mapping
	// that the owning transaction has redirected back; the owner accesses
	// the original address, everyone else still follows the mapping.
	TransientDelete
)

// String names the state.
func (s State) String() string {
	switch s {
	case Free:
		return "free"
	case GlobalValid:
		return "global-valid"
	case TransientAdd:
		return "transient-add"
	case TransientDelete:
		return "transient-delete"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Bits returns the (global, valid) encoding of Table II.
func (s State) Bits() (global, valid bool) {
	switch s {
	case GlobalValid:
		return true, true
	case TransientAdd:
		return false, true
	case TransientDelete:
		return true, false
	case Free:
		return false, false
	default:
		panic("redirect: Bits on impossible state")
	}
}

// StateFromBits decodes a (global, valid) pair.
func StateFromBits(global, valid bool) State {
	switch {
	case global && valid:
		return GlobalValid
	case !global && valid:
		return TransientAdd
	case global && !valid:
		return TransientDelete
	}
	return Free
}

// Entry is one redirect mapping: accesses to Orig are redirected to Pool
// (a line in the preserved pool) according to the entry's state. Owner is
// the core whose transaction holds the entry while it is transient.
type Entry struct {
	Orig  sim.Line
	Pool  sim.Line
	state State
	Owner int
}

// State returns the entry's current state.
func (e *Entry) State() State { return e.state }

// TargetFor returns the line an access to e.Orig by core should use,
// applying the visibility rules of Table II.
func (e *Entry) TargetFor(core int) sim.Line {
	switch e.state {
	case GlobalValid:
		return e.Pool
	case TransientAdd:
		if core == e.Owner {
			return e.Pool
		}
		return e.Orig
	case TransientDelete:
		if core == e.Owner {
			return e.Orig
		}
		return e.Pool
	case Free:
		// A free entry maps nothing: accesses go to the original line.
		return e.Orig
	default:
		panic("redirect: TargetFor on impossible state")
	}
}

// CommitState returns the entry's post-commit state per Figure 4(e):
// valid=1 entries set the global bit (transient adds publish), valid=0
// entries clear it (transient deletes free the slot).
func (e *Entry) CommitState() State {
	_, valid := e.state.Bits()
	if valid {
		return GlobalValid
	}
	return Free
}

// AbortState returns the entry's post-abort state per Figure 4(f):
// global=1 entries restore the valid bit (transient deletes revert to
// globally valid), global=0 entries clear it (transient adds vanish).
func (e *Entry) AbortState() State {
	global, _ := e.state.Bits()
	if global {
		return GlobalValid
	}
	return Free
}
