// Command hwmodel prints the hardware-cost side of the paper's
// evaluation: Table VI (contemporary processor parameters), Table VII
// (CACTI-style estimates of the 512-entry fully-associative first-level
// redirect table across technology nodes) and the Section V-C
// storage/energy/area arithmetic.
//
// Usage:
//
//	hwmodel              # everything
//	hwmodel -table6 | -table7 | -vc
//	hwmodel -entries 1024 -bits 22 -nm 32   # custom table estimate
package main

import (
	"flag"
	"fmt"
	"os"

	"suvtm/internal/cactimodel"
)

func main() {
	var (
		table6  = flag.Bool("table6", false, "print Table VI only")
		table7  = flag.Bool("table7", false, "print Table VII only")
		vc      = flag.Bool("vc", false, "print the Section V-C summary only")
		entries = flag.Int("entries", 0, "custom estimate: table entries")
		bits    = flag.Int("bits", 64, "custom estimate: entry width in bits")
		nm      = flag.Int("nm", 45, "custom estimate: technology node")
	)
	flag.Parse()

	if *entries > 0 {
		est, err := cactimodel.FullyAssociative(*nm, *entries, *bits)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hwmodel:", err)
			os.Exit(1)
		}
		fmt.Printf("%d-entry x %d-bit fully-associative table at %d nm:\n", est.Entries, est.EntryBit, est.Nm)
		fmt.Printf("  access time: %.3f ns (%d cycles at 1.2 GHz)\n", est.AccessNs, est.CyclesAt(1.2))
		fmt.Printf("  dynamic energy: read %.3f nJ, write %.3f nJ\n", est.ReadNj, est.WriteNj)
		fmt.Printf("  area: %.3f mm2\n", est.AreaMm2)
		return
	}
	any := *table6 || *table7 || *vc
	if *table6 || !any {
		fmt.Println(cactimodel.RenderTable6())
	}
	if *table7 || !any {
		fmt.Println(cactimodel.RenderTable7())
	}
	if *vc || !any {
		fmt.Println(cactimodel.RenderSectionVC())
	}
}
