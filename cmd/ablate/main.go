// Command ablate runs the ablation studies for the design choices the
// paper leans on: the redirect-back optimization, the Stall conflict
// policy, and the 2 Kbit Bloom-signature sizing.
//
// Usage:
//
//	ablate                 # all three studies on the high-contention apps
//	ablate -redirectback | -policy | -sigbits
//	ablate -apps yada,labyrinth -scale 0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"suvtm/internal/experiments"
	"suvtm/internal/workload"
)

func main() {
	var (
		rb      = flag.Bool("redirectback", false, "redirect-back ablation only")
		policy  = flag.Bool("policy", false, "conflict-policy ablation only")
		sigbits = flag.Bool("sigbits", false, "signature-size ablation only")
		cores   = flag.Int("cores", 16, "simulated cores")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		scale   = flag.Float64("scale", 1.0, "workload scale factor")
		apps    = flag.String("apps", "", "comma-separated app subset (default: high-contention five)")
		jobs    = flag.Int("jobs", 0, "concurrent simulations (0 = one per host CPU)")

		cacheDir = flag.String("cache-dir", os.Getenv("SUVTM_RUNCACHE"),
			"persist the run cache under this directory (default $SUVTM_RUNCACHE; empty = in-memory only)")
		cacheVerify = flag.Bool("cache-verify", false,
			"re-simulate a sample of cache hits and fail on divergence")
	)
	flag.Parse()

	opts := experiments.Options{Cores: *cores, Seed: *seed, Scale: *scale, Jobs: *jobs}
	if *apps != "" {
		opts.Apps = strings.Split(*apps, ",")
	} else {
		opts.Apps = workload.HighContentionApps
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "ablate:", err)
		os.Exit(1)
	}
	if *cacheDir != "" {
		if err := experiments.SetRunCacheDir(*cacheDir); err != nil {
			fail(err)
		}
	}
	if *cacheVerify {
		experiments.SetRunCacheVerify(4)
	}
	all := !*rb && !*policy && !*sigbits
	if *rb || all {
		ab, err := experiments.RunAblationRedirectBack(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(ab.Render())
	}
	if *policy || all {
		ab, err := experiments.RunAblationPolicy(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(ab.Render())
	}
	if *sigbits || all {
		ab, err := experiments.RunAblationSigBits(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(ab.Render())
	}
	fmt.Println(experiments.FleetSnapshot())
}
