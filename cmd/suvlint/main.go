// Command suvlint runs the repo's static-analysis suite (detmap,
// wallclock, hotalloc, exhaustive, peekpure, stalesuppress — see
// internal/analysis).
//
// It speaks two protocols:
//
//   - Invoked with package patterns, it re-executes itself under
//     "go vet -vettool", which handles package loading, caching and
//     modular fact propagation:
//
//     go run ./cmd/suvlint ./...
//     go run ./cmd/suvlint -json ./...   # machine-readable findings
//
//   - Invoked by the go command (with -V=full, -flags, or a *.cfg
//     compilation-unit file), it acts as a unitchecker-based vet tool,
//     so "go vet -vettool=$(which suvlint) ./..." also works.
//
// Exit status is that of go vet: non-zero iff findings were reported
// (in -json mode go vet exits 0 and findings go to stdout as JSON,
// keyed by package then analyzer, for CI annotation tooling).
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"suvtm/internal/analysis"
)

func main() {
	args := os.Args[1:]
	if vetToolInvocation(args) {
		unitchecker.Main(analysis.Analyzers()...) // never returns
	}

	jsonOut := false
	var patterns []string
	for _, a := range args {
		switch a {
		case "-json", "--json":
			jsonOut = true
		case "-h", "-help", "--help":
			usage()
			return
		default:
			if strings.HasPrefix(a, "-") {
				fmt.Fprintf(os.Stderr, "suvlint: unknown flag %s\n", a)
				usage()
				os.Exit(2)
			}
			patterns = append(patterns, a)
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "suvlint: cannot locate own executable: %v\n", err)
		os.Exit(2)
	}
	vetArgs := []string{"vet", "-vettool=" + self}
	if jsonOut {
		vetArgs = append(vetArgs, "-json")
	}
	vetArgs = append(vetArgs, patterns...)
	cmd := exec.Command("go", vetArgs...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "suvlint: %v\n", err)
		os.Exit(2)
	}
}

// vetToolInvocation reports whether the go command is driving us as a
// vet tool: it passes -V=full to fingerprint the tool, -flags to list
// analyzer flags, and a JSON *.cfg file per compilation unit.
func vetToolInvocation(args []string) bool {
	for _, a := range args {
		if strings.HasPrefix(a, "-V") || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: suvlint [-json] [packages]

Runs the suvtm static-analysis suite (detmap, wallclock, hotalloc,
exhaustive, peekpure, stalesuppress) over the given package patterns
(default ./...) by re-executing itself under "go vet -vettool", which
also propagates peekpure's cross-package purity facts in dependency
order.
`)
}
