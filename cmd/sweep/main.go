// Command sweep runs the paper's redirect-table sensitivity studies:
// Figure 7 (first-level table size: miss rate and execution time) and
// Figure 8 (second-level table size and latency).
//
// Usage:
//
//	sweep -fig7 [-scale 1.0] [-apps bayes,labyrinth,yada]
//	sweep -fig8size | -fig8lat | -all
//	sweep -series intruder -csv out   # per-interval time series per scheme
//	sweep -forensics intruder -folded out   # conflict forensics across schemes
//	sweep -all -progress              # stream fleet progress to stderr
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"suvtm/internal/experiments"
	"suvtm/internal/hostprof"
)

func main() {
	var (
		csvDir   = flag.String("csv", "", "also write <dir>/<sweep>.csv for plotting")
		fig7     = flag.Bool("fig7", false, "sweep the first-level redirect-table size (Figure 7)")
		fig8size = flag.Bool("fig8size", false, "sweep the second-level table size (Figure 8a)")
		fig8lat  = flag.Bool("fig8lat", false, "sweep the second-level table latency (Figure 8b)")
		scaling  = flag.String("scaling", "", "core-count scaling study for one app (e.g. -scaling yada)")
		all      = flag.Bool("all", false, "run every sweep")
		cores    = flag.Int("cores", 16, "simulated cores")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		scale    = flag.Float64("scale", 1.0, "workload scale factor")
		apps     = flag.String("apps", "", "comma-separated app subset (default: all eight)")
		series    = flag.String("series", "", "per-interval time series for one app under the Figure 6 schemes (requires -csv)")
		interval  = flag.Uint64("sample-interval", 10000, "sampling interval for -series, in simulated cycles")
		forensic  = flag.String("forensics", "", "conflict-forensics comparison for one app across every scheme (true conflicts vs signature false positives, hottest lines/sites)")
		topK      = flag.Int("forensics-topk", 0, "hot-site/hot-line table depth for -forensics (0 = default)")
		foldedDir = flag.String("folded", "", "with -forensics, also write <dir>/forensics_<app>_<scheme>.folded cycle-loss profiles")
		progress  = flag.Bool("progress", false, "stream deterministic fleet-progress snapshots to stderr while batches run")
		jobs     = flag.Int("jobs", 0, "concurrent simulations (0 = one per host CPU)")
		cacheDir = flag.String("cache-dir", os.Getenv("SUVTM_RUNCACHE"),
			"persist the run cache under this directory (default $SUVTM_RUNCACHE; empty = in-memory only)")
		cacheVerify = flag.Bool("cache-verify", false,
			"re-simulate a sample of cache hits and fail on divergence")

		cpuProfile = flag.String("cpuprofile", "", "write a host CPU profile of the sweep to this file (go tool pprof)")
		memProfile = flag.String("memprofile", "", "write a host heap profile taken after the sweep to this file")
	)
	flag.Parse()

	stopProfiles, err := hostprof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(2)
	}
	defer stopProfiles()

	opts := experiments.Options{Cores: *cores, Seed: *seed, Scale: *scale, Jobs: *jobs}
	if *apps != "" {
		opts.Apps = strings.Split(*apps, ",")
	}
	if *progress {
		opts.OnProgress = func(p experiments.FleetProgress) {
			fmt.Fprintln(os.Stderr, "sweep:", p.String())
		}
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		stopProfiles()
		os.Exit(1)
	}
	if *cacheDir != "" {
		if err := experiments.SetRunCacheDir(*cacheDir); err != nil {
			fail(err)
		}
	}
	if *cacheVerify {
		experiments.SetRunCacheVerify(4)
	}
	ran := false
	if *fig7 || *all {
		ran = true
		sw, err := experiments.RunFig7(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(sw.Render())
		saveCSV(*csvDir, "fig7.csv", sw, fail)
	}
	if *fig8size || *all {
		ran = true
		sw, err := experiments.RunFig8Size(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(sw.Render())
		saveCSV(*csvDir, "fig8a.csv", sw, fail)
	}
	if *scaling != "" {
		ran = true
		sc, err := experiments.RunScaling(*scaling,
			[]experiments.Scheme{experiments.LogTMSE, experiments.SUVTM},
			nil, *seed, opts.Scale)
		if err != nil {
			fail(err)
		}
		fmt.Println(sc.Render())
	}
	if *fig8lat || *all {
		ran = true
		sw, err := experiments.RunFig8Latency(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(sw.Render())
		saveCSV(*csvDir, "fig8b.csv", sw, fail)
	}
	if *series != "" {
		ran = true
		if *csvDir == "" {
			fail(fmt.Errorf("-series needs -csv <dir> to write the per-scheme CSVs"))
		}
		runSeries(*series, opts, *interval, *csvDir, fail)
	}
	if *forensic != "" {
		ran = true
		runForensics(*forensic, opts, *topK, *foldedDir, fail)
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	fmt.Println(experiments.FleetSnapshot())
}

// runSeries samples one app under each Figure 6 scheme and writes
// series_<app>_<scheme>.csv per scheme: one row per sampling interval
// with commit/abort/NACK rates, cache activity and redirect occupancy.
func runSeries(app string, opts experiments.Options, interval uint64, dir string, fail func(error)) {
	specs := make([]experiments.Spec, len(experiments.Fig6Schemes))
	for i, s := range experiments.Fig6Schemes {
		specs[i] = experiments.Spec{
			App: app, Scheme: s,
			Cores: opts.Cores, Seed: opts.Seed, Scale: opts.Scale,
			SampleInterval: interval,
		}
	}
	outs, err := experiments.RunMany(specs)
	if err != nil {
		fail(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fail(err)
	}
	for _, out := range outs {
		name := fmt.Sprintf("series_%s_%s.csv", app,
			strings.ReplaceAll(string(out.Spec.Scheme), "+", "-"))
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			fail(err)
		}
		err = out.Series.WriteCSV(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d intervals, %d cycles total)\n", path, len(out.Series.Rows), out.Cycles)
	}
}

// runForensics compares one app's conflict forensics across every
// scheme and optionally writes per-scheme folded cycle-loss profiles
// (feed them to flamegraph.pl or `pprof -raw`-style tooling).
func runForensics(app string, opts experiments.Options, topK int, foldedDir string, fail func(error)) {
	cmp, err := experiments.RunForensics(app, nil, experiments.ForensicsOptions{
		Cores: opts.Cores, Seed: opts.Seed, Scale: opts.Scale, TopK: topK,
		Batch: experiments.BatchOptions{Jobs: opts.Jobs, OnProgress: opts.OnProgress},
	})
	if err != nil {
		fail(err)
	}
	fmt.Println(cmp.Render())
	if foldedDir == "" {
		return
	}
	if err := os.MkdirAll(foldedDir, 0o755); err != nil {
		fail(err)
	}
	for _, s := range cmp.Schemes {
		rep := cmp.Reports[s]
		if rep == nil {
			continue
		}
		name := fmt.Sprintf("forensics_%s_%s.folded", app,
			strings.ReplaceAll(string(s), "+", "-"))
		path := filepath.Join(foldedDir, name)
		f, err := os.Create(path)
		if err != nil {
			fail(err)
		}
		err = rep.WriteFolded(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d folds)\n", path, len(rep.Folds))
	}
}

// saveCSV writes a sweep to dir/name when dir is non-empty.
func saveCSV(dir, name string, sw *experiments.Sweep, fail func(error)) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fail(err)
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := sw.WriteCSV(f); err != nil {
		fail(err)
	}
	fmt.Println("wrote", filepath.Join(dir, name))
}
