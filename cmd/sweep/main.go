// Command sweep runs the paper's redirect-table sensitivity studies:
// Figure 7 (first-level table size: miss rate and execution time) and
// Figure 8 (second-level table size and latency).
//
// Usage:
//
//	sweep -fig7 [-scale 1.0] [-apps bayes,labyrinth,yada]
//	sweep -fig8size | -fig8lat | -all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"suvtm/internal/experiments"
)

func main() {
	var (
		csvDir   = flag.String("csv", "", "also write <dir>/<sweep>.csv for plotting")
		fig7     = flag.Bool("fig7", false, "sweep the first-level redirect-table size (Figure 7)")
		fig8size = flag.Bool("fig8size", false, "sweep the second-level table size (Figure 8a)")
		fig8lat  = flag.Bool("fig8lat", false, "sweep the second-level table latency (Figure 8b)")
		scaling  = flag.String("scaling", "", "core-count scaling study for one app (e.g. -scaling yada)")
		all      = flag.Bool("all", false, "run every sweep")
		cores    = flag.Int("cores", 16, "simulated cores")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		scale    = flag.Float64("scale", 1.0, "workload scale factor")
		apps     = flag.String("apps", "", "comma-separated app subset (default: all eight)")
	)
	flag.Parse()

	opts := experiments.Options{Cores: *cores, Seed: *seed, Scale: *scale}
	if *apps != "" {
		opts.Apps = strings.Split(*apps, ",")
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	ran := false
	if *fig7 || *all {
		ran = true
		sw, err := experiments.RunFig7(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(sw.Render())
		saveCSV(*csvDir, "fig7.csv", sw, fail)
	}
	if *fig8size || *all {
		ran = true
		sw, err := experiments.RunFig8Size(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(sw.Render())
		saveCSV(*csvDir, "fig8a.csv", sw, fail)
	}
	if *scaling != "" {
		ran = true
		sc, err := experiments.RunScaling(*scaling,
			[]experiments.Scheme{experiments.LogTMSE, experiments.SUVTM},
			nil, *seed, opts.Scale)
		if err != nil {
			fail(err)
		}
		fmt.Println(sc.Render())
	}
	if *fig8lat || *all {
		ran = true
		sw, err := experiments.RunFig8Latency(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(sw.Render())
		saveCSV(*csvDir, "fig8b.csv", sw, fail)
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// saveCSV writes a sweep to dir/name when dir is non-empty.
func saveCSV(dir, name string, sw *experiments.Sweep, fail func(error)) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fail(err)
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := sw.WriteCSV(f); err != nil {
		fail(err)
	}
	fmt.Println("wrote", filepath.Join(dir, name))
}
