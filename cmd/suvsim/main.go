// Command suvsim runs one transactional application under one
// version-management scheme on the simulated CMP and prints the
// execution-time breakdown and counters — the smallest way to poke at
// the simulator.
//
// Usage:
//
//	suvsim -app intruder -scheme SUV-TM [-cores 16] [-scale 1.0] [-seed 1]
//	suvsim -config        # print the Table III machine configuration
//	suvsim -list          # list available applications
//
// Observability (see EXPERIMENTS.md for a walkthrough):
//
//	suvsim -app intruder -scheme SUV-TM -chrome-trace t.json \
//	       -metrics-csv m.csv -sample-interval 10000 -metrics-json m.json
//
// Conflict forensics (abort attribution, signature false-positive
// accounting, cycle-loss flamegraphs):
//
//	suvsim -app intruder -scheme SUV-TM -conflict-report r.json \
//	       -folded-stacks r.folded
//
// Robustness (deterministic fault injection; see README.md):
//
//	suvsim -app intruder -scheme SUV-TM -faults nack-storm -fault-seed 7
//	suvsim -faults list   # list the built-in fault plans
//	suvsim -chaos         # sweep every scheme x plan x seed, with replay
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"suvtm"
	"suvtm/internal/hostprof"
)

func main() {
	var (
		app    = flag.String("app", "intruder", "application (see -list)")
		scheme = flag.String("scheme", "SUV-TM", "LogTM-SE | FasTM | SUV-TM | DynTM | DynTM+SUV")
		cores  = flag.Int("cores", 16, "simulated cores")
		scale  = flag.Float64("scale", 1.0, "workload scale factor")
		seed   = flag.Uint64("seed", 1, "simulation seed")
		shards = flag.Int("shards", 0, "parallel window-engine shards (0 = sequential engine; results are bit-identical for every value)")
		banks  = flag.Int("banks", 0, "directory/L2 bank count override (0 = default; results are bit-identical for every value)")
		config = flag.Bool("config", false, "print the simulated CMP configuration and exit")
		list   = flag.Bool("list", false, "list available applications and exit")
		traceN = flag.Int("trace", 0, "dump the last N transaction lifecycle events")

		metricsJSON = flag.String("metrics-json", "", "write the end-of-run metrics snapshot (counters, gauges, histograms) to this file")
		metricsCSV  = flag.String("metrics-csv", "", "write the interval-sampled time series to this CSV file")
		metricsProm = flag.String("metrics-prom", "", "write the metrics snapshot in Prometheus text exposition format to this file")
		chromeTrace = flag.String("chrome-trace", "", "write a Chrome trace-event JSON (Perfetto / chrome://tracing) to this file")
		interval    = flag.Uint64("sample-interval", 10000, "time-series sampling interval in simulated cycles")

		conflictReport = flag.String("conflict-report", "", "write the JSON conflict-forensics report (abort attribution, false-positive accounting) to this file")
		foldedStacks   = flag.String("folded-stacks", "", "write cycle-loss profiles as folded stacks (site;line;cause weight — flamegraph.pl / pprof ready) to this file")
		forensicsTopK  = flag.Int("forensics-topk", 0, "hot-site/hot-line table depth in the conflict report (0 = default)")

		faultPlan    = flag.String("faults", "", "inject a built-in fault plan (\"list\" to enumerate), arming the escalation ladder")
		faultFile    = flag.String("faults-file", "", "inject the exact fault plan decoded from this file (overrides -faults)")
		faultSeed    = flag.Uint64("fault-seed", 1, "seed for the fault plan's window placement")
		progressDump = flag.Bool("progress-dump", false, "print the robustness counters (injected faults, retries, escalations) after the run")
		chaos        = flag.Bool("chaos", false, "run the full chaos sweep (schemes x plans x seeds, each replayed) and exit")

		cpuProfile = flag.String("cpuprofile", "", "write a host CPU profile of the run to this file (go tool pprof)")
		memProfile = flag.String("memprofile", "", "write a host heap profile taken after the run to this file")

		cacheDir = flag.String("cache-dir", os.Getenv("SUVTM_RUNCACHE"),
			"serve repeated pure runs from a persistent run cache under this directory (default $SUVTM_RUNCACHE)")
		cacheVerify = flag.Bool("cache-verify", false,
			"re-simulate a sample of cache hits and fail on divergence")
	)
	flag.Parse()

	stopProfiles, err := hostprof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "suvsim:", err)
		os.Exit(2)
	}
	defer stopProfiles()

	if *list {
		fmt.Println("applications:", strings.Join(suvtm.Apps(), ", "))
		fmt.Println("STAMP analogues:", strings.Join(suvtm.StampApps(), ", "))
		return
	}
	if *config {
		printConfig(suvtm.DefaultConfig(*cores))
		return
	}
	if *faultPlan == "list" {
		fmt.Println("fault plans:", strings.Join(suvtm.FaultPlanNames(), ", "))
		return
	}
	if *chaos {
		runChaos()
		return
	}

	spec := suvtm.Spec{
		App: *app, Scheme: suvtm.Scheme(*scheme),
		Cores: *cores, Scale: *scale, Seed: *seed,
		Shards:      *shards,
		Banks:       *banks,
		TraceEvents: *traceN,
		Metrics:     *metricsJSON != "" || *metricsProm != "",
		ChromeTrace: *chromeTrace != "",
		FaultPlan:   *faultPlan,
		FaultSeed:   *faultSeed,

		Forensics:     *conflictReport != "" || *foldedStacks != "",
		ForensicsTopK: *forensicsTopK,
	}
	if *faultFile != "" {
		f, err := os.Open(*faultFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "suvsim:", err)
			os.Exit(2)
		}
		plan, err := suvtm.DecodeFaultPlan(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "suvsim:", err)
			os.Exit(2)
		}
		spec.Faults = plan
	}
	if *metricsCSV != "" {
		if *interval == 0 {
			fmt.Fprintln(os.Stderr, "suvsim: -metrics-csv needs a positive -sample-interval")
			os.Exit(2)
		}
		spec.SampleInterval = suvtm.Cycles(*interval)
	}
	run := suvtm.Run
	if *cacheDir != "" {
		if err := suvtm.SetRunCacheDir(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, "suvsim:", err)
			os.Exit(2)
		}
		if *cacheVerify {
			suvtm.SetRunCacheVerify(4)
		}
		run = suvtm.RunCached
	}
	out, err := run(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "suvsim:", err)
		var wd *suvtm.WatchdogError
		var dl *suvtm.DeadlockError
		switch {
		case errors.As(err, &wd):
			fmt.Fprintln(os.Stderr, "\npost-mortem (watchdog):")
			fmt.Fprintln(os.Stderr, wd.PostMortem())
		case errors.As(err, &dl):
			fmt.Fprintln(os.Stderr, "\npost-mortem (deadlock):")
			fmt.Fprintln(os.Stderr, dl.PostMortem())
		}
		if out != nil {
			writeMetrics(out, *metricsJSON, *metricsCSV, *chromeTrace, *metricsProm, *conflictReport, *foldedStacks)
		}
		stopProfiles()
		os.Exit(1)
	}
	if out.CheckErr != nil {
		fmt.Fprintln(os.Stderr, "suvsim: INVARIANT VIOLATION:", out.CheckErr)
		stopProfiles()
		os.Exit(1)
	}
	c := out.Counters
	fmt.Printf("%s under %s (%d cores, scale %.2f, seed %d)\n", *app, *scheme, *cores, *scale, *seed)
	fmt.Printf("  execution time: %d cycles (%.3f ms at 1.2 GHz)\n", out.Cycles, float64(out.Cycles)/1.2e6)
	fmt.Printf("  breakdown:      %s\n", out.Breakdown.String())
	fmt.Printf("  transactions:   %d committed, %d aborted (%.1f%% abort ratio)\n",
		c.TxCommitted, c.TxAborted, 100*c.AbortRatio())
	fmt.Printf("  conflicts:      %d NACKs, %d cycle aborts, %d remote aborts, %d false positives\n",
		c.NACKsReceived, c.CycleAborts, c.RemoteAborts, c.FalsePositive)
	fmt.Printf("  caches:         L1 %d hits / %d misses, L2 %d hits / %d misses, %d writebacks\n",
		c.L1Hits, c.L1Misses, c.L2Hits, c.L2Misses, c.Writebacks)
	fmt.Printf("  overflows:      %d cache-overflow tx, %d table-overflow tx, %d spec evictions\n",
		c.CacheOverflowTx, c.TableOverflowTx, c.SpecLineEvicted)
	if c.RedirectLookups > 0 {
		fmt.Printf("  redirect:       %d lookups (%.1f%% L1-table hits), %d entries added, %d redirect-backs, %d live entries, %d pool pages\n",
			c.RedirectLookups, 100*(1-c.RedirectL1MissRate()), c.RedirectEntriesAdd, c.RedirectBacks, out.RedirectEn, out.PoolPages)
	}
	if c.UndoLogEntries > 0 {
		fmt.Printf("  undo log:       %d records written, %d replayed, %d software traps\n",
			c.UndoLogEntries, c.UndoLogRestores, c.SoftwareTraps)
	}
	if c.EagerTx+c.LazyTx > 0 {
		fmt.Printf("  selector:       %d eager, %d lazy transactions (%d merge lines)\n",
			c.EagerTx, c.LazyTx, c.LazyCommitMerges)
	}
	if c.IsoWindows > 0 {
		fmt.Printf("  isolation:      %.0f-cycle mean writer window over %d windows\n",
			c.MeanIsolationWindow(), c.IsoWindows)
	}
	fmt.Println("  invariants:     OK (serializability checks passed)")
	if *shards > 0 {
		if ps := out.Parallel; ps.Shards > 0 {
			fmt.Printf("  parallel:       %d shards x %d workers, %d dir/L2 banks: %d windows (%d chain ops), %d sequential steps\n",
				ps.Shards, ps.Workers, ps.Banks, ps.Windows, ps.ChainOps, ps.SeqSteps)
			fmt.Printf("                  fallbacks by cause: %d engine-op, %d scheme, %d cross-core, %d small-window (of %d attempts)\n",
				ps.FallbackEngine, ps.FallbackScheme, ps.FallbackCrossCore, ps.FallbackSmall, ps.Attempts)
		} else {
			fmt.Println("  parallel:       run ineligible (scheme or observers); sequential engine used")
		}
	}
	if *progressDump || spec.FaultPlan != "" || spec.Faults != nil {
		fmt.Printf("  robustness:     %d injected NACKs, %d mesh timeouts / %d retries / %d duplicates\n",
			c.InjectedNACKs, c.MeshTimeouts, c.MeshRetries, c.MeshDuplicates)
		fmt.Printf("                  %d starvation escalations, %d token grants, %d degraded completions, %d pool-reclaim stalls\n",
			c.StarveEscalations, c.TokenGrants, c.GracefulDegradation, c.PoolReclaimStalls)
	}
	if out.Forensics != nil {
		fmt.Printf("  forensics:      %s\n", out.Forensics)
	}
	if out.Trace != nil {
		fmt.Printf("\nLast %d lifecycle events (of %d recorded):\n%s",
			*traceN, out.Trace.Total(), out.Trace.Dump())
	}
	writeMetrics(out, *metricsJSON, *metricsCSV, *chromeTrace, *metricsProm, *conflictReport, *foldedStacks)
	if *cacheDir != "" {
		fmt.Printf("  %s\n", suvtm.FleetSnapshot())
	}
}

// runChaos executes the full robustness sweep and prints the verdict
// table; a failed acceptance gate exits nonzero.
func runChaos() {
	ch, err := suvtm.RunChaos(suvtm.ChaosOptions{Replay: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, "suvsim:", err)
		os.Exit(1)
	}
	fmt.Print(ch.Render())
	if err := ch.Verify(); err != nil {
		fmt.Fprintln(os.Stderr, "suvsim: chaos sweep FAILED:", err)
		os.Exit(1)
	}
	fmt.Println("chaos sweep: all cells completed, serializable, and replayed bit-identically")
}

// writeMetrics exports the run's observability outputs to the requested
// files.
func writeMetrics(out *suvtm.Outcome, jsonPath, csvPath, tracePath, promPath, reportPath, foldedPath string) {
	save := func(path, what string, write func(*os.File) error) {
		f, err := os.Create(path)
		if err == nil {
			err = write(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "suvsim:", err)
			os.Exit(1)
		}
		fmt.Printf("  wrote %s: %s\n", what, path)
	}
	if jsonPath != "" && out.Metrics != nil {
		save(jsonPath, "metrics snapshot", func(f *os.File) error { return out.Metrics.WriteJSON(f) })
	}
	if csvPath != "" && out.Series != nil {
		save(csvPath, "interval series", func(f *os.File) error { return out.Series.WriteCSV(f) })
	}
	if tracePath != "" && out.Chrome != nil {
		save(tracePath, "Chrome trace", func(f *os.File) error { return out.Chrome.WriteJSON(f) })
	}
	if promPath != "" && out.Metrics != nil {
		save(promPath, "Prometheus metrics", func(f *os.File) error { return out.Metrics.WriteProm(f) })
	}
	if reportPath != "" && out.Forensics != nil {
		save(reportPath, "conflict report", func(f *os.File) error { return out.Forensics.WriteJSON(f) })
	}
	if foldedPath != "" && out.Forensics != nil {
		save(foldedPath, "folded stacks", func(f *os.File) error { return out.Forensics.WriteFolded(f) })
	}
}

func printConfig(cfg suvtm.MachineConfig) {
	fmt.Println("Simulated CMP (Table III):")
	fmt.Printf("  cores:        %d in-order, single issue, 1.2 GHz\n", cfg.Cores)
	fmt.Printf("  L1 cache:     %d KB %d-way, 64-byte lines, write-back, %d-cycle\n", cfg.L1.SizeBytes>>10, cfg.L1.Ways, cfg.L1Latency)
	fmt.Printf("  L2 cache:     %d MB %d-way, write-back, %d-cycle\n", cfg.L2.SizeBytes>>20, cfg.L2.Ways, cfg.L2Latency)
	fmt.Printf("  memory:       %d-cycle latency\n", cfg.MemLatency)
	fmt.Printf("  directory:    bit vector of sharers, %d-cycle\n", cfg.DirLatency)
	fmt.Printf("  interconnect: mesh, %d-cycle wire, %d-cycle route\n", cfg.WireLatency, cfg.RouteLatency)
	fmt.Printf("  signatures:   %d-bit Bloom filters\n", cfg.SigBits)
	fmt.Printf("  1st-level redirect table: %d-entry zero-latency fully associative\n", cfg.Redirect.L1Entries)
	fmt.Printf("  2nd-level redirect table: %d-cycle %d-entry %d-way shared\n", cfg.Redirect.L2Latency, cfg.Redirect.L2Entries, cfg.Redirect.L2Ways)
}
