// Command stampbench runs the paper's STAMP-analogue evaluation:
// Figure 6 (LogTM-SE vs FasTM vs SUV-TM breakdown), Figure 9 (DynTM vs
// DynTM+SUV), Table I (abort ratios), Table IV (workload
// characteristics) and Table V (overflow statistics).
//
// Usage:
//
//	stampbench -fig6 [-scale 1.0] [-cores 16] [-apps bayes,yada]
//	stampbench -fig9
//	stampbench -table1 | -table4 | -table5
//	stampbench -all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"suvtm/internal/experiments"
)

func main() {
	var (
		csvDir = flag.String("csv", "", "also write <dir>/fig6.csv and <dir>/fig9.csv for plotting")
		fig1   = flag.Bool("fig1", false, "measure isolation windows (Figure 1, quantified)")
		fig6   = flag.Bool("fig6", false, "run the Figure 6 experiment")
		fig9   = flag.Bool("fig9", false, "run the Figure 9 experiment")
		table1 = flag.Bool("table1", false, "print Table I (abort ratios)")
		table4 = flag.Bool("table4", false, "print Table IV (workload characteristics)")
		table5 = flag.Bool("table5", false, "run the Table V overflow experiment")
		all    = flag.Bool("all", false, "run every experiment")
		seeds  = flag.Int("seeds", 0, "run the SUV-vs-LogTM seed-robustness study over N seeds")
		cores  = flag.Int("cores", 16, "simulated cores")
		seed   = flag.Uint64("seed", 1, "simulation seed")
		scale  = flag.Float64("scale", 1.0, "workload scale factor")
		apps   = flag.String("apps", "", "comma-separated app subset (default: all eight)")
		jobs   = flag.Int("jobs", 0, "concurrent simulations (0 = one per host CPU)")

		cacheDir = flag.String("cache-dir", os.Getenv("SUVTM_RUNCACHE"),
			"persist the run cache under this directory (default $SUVTM_RUNCACHE; empty = in-memory only)")
		cacheVerify = flag.Bool("cache-verify", false,
			"re-simulate a sample of cache hits and fail on divergence")
	)
	flag.Parse()

	opts := experiments.Options{Cores: *cores, Seed: *seed, Scale: *scale, Jobs: *jobs}
	if *apps != "" {
		opts.Apps = strings.Split(*apps, ",")
	}
	ran := false
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "stampbench:", err)
		os.Exit(1)
	}
	if *cacheDir != "" {
		if err := experiments.SetRunCacheDir(*cacheDir); err != nil {
			fail(err)
		}
	}
	if *cacheVerify {
		experiments.SetRunCacheVerify(4)
	}
	if *fig1 || *all {
		ran = true
		res, err := experiments.RunFig1(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Render())
	}
	if *table4 || *all {
		ran = true
		fmt.Println(experiments.RenderTable4())
	}
	if *fig6 || *all {
		ran = true
		res, err := experiments.RunFig6(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Render())
		if *csvDir != "" {
			if err := writeCSV(*csvDir, "fig6.csv", res.Matrix); err != nil {
				fail(err)
			}
		}
	}
	if *table1 || *all {
		ran = true
		out, err := experiments.RunTable1(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(out.Render())
	}
	if *table5 || *all {
		ran = true
		out, err := experiments.RunTable5(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(out.Render())
	}
	if *fig9 || *all {
		ran = true
		res, err := experiments.RunFig9(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Render())
		if *csvDir != "" {
			if err := writeCSV(*csvDir, "fig9.csv", res.Matrix); err != nil {
				fail(err)
			}
		}
	}
	if *seeds > 0 {
		ran = true
		list := make([]uint64, *seeds)
		for i := range list {
			list[i] = uint64(i + 1)
		}
		study, err := experiments.RunSeedStudy(opts, experiments.LogTMSE, experiments.SUVTM, list)
		if err != nil {
			fail(err)
		}
		fmt.Println(study.Render())
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	fmt.Println(experiments.FleetSnapshot())
}

// writeCSV saves a matrix as dir/name for external plotting.
func writeCSV(dir, name string, m *experiments.Matrix) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.WriteCSV(f); err != nil {
		return err
	}
	fmt.Println("wrote", filepath.Join(dir, name))
	return f.Close()
}
