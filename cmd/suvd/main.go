// Command suvd runs the SUV-TM simulation service: an HTTP/JSON daemon
// that accepts batches of run specs, executes them through the fleet
// engine over the content-addressed run cache, and streams per-scheme
// progress rollups as NDJSON.
//
// Serve (default mode):
//
//	suvd -addr :7077 -journal /var/lib/suvd/journal.wal -cache-dir /var/cache/suvtm
//
// Endpoints: POST /v1/jobs (submit), GET /v1/jobs[/{id}[/stream]],
// GET /v1/deadletters, /healthz, /readyz, /metrics (Prometheus text).
// SIGTERM/SIGINT begins a graceful drain: admission turns to 503,
// in-flight jobs finish (bounded by -drain-timeout), queued jobs stay
// journaled for the next start. A second signal exits immediately.
//
// Loadtest mode drives an RPS ramp against a running daemon and gates
// the result on latency SLOs:
//
//	suvd -loadtest -target http://127.0.0.1:7077 -ramp 5,10,20 -stage 2s -slo-p99 250ms
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"suvtm/internal/experiments"
	"suvtm/internal/suvd"
)

func main() {
	var (
		addr         = flag.String("addr", ":7077", "listen address")
		journal      = flag.String("journal", "suvd.wal", "job journal path (empty = ephemeral, no crash safety)")
		cacheDir     = flag.String("cache-dir", os.Getenv("SUVTM_RUNCACHE"), "on-disk run cache directory (empty = memory tier only)")
		workers      = flag.Int("workers", 0, "concurrent job executors (0 = GOMAXPROCS/2)")
		queueCap     = flag.Int("queue", 64, "bounded job-queue capacity")
		perClient    = flag.Int("per-client", 8, "per-client queued+running cap")
		attempts     = flag.Int("attempts", 3, "per-job attempt budget before dead-letter")
		jobTimeout   = flag.Duration("job-timeout", 0, "per-job deadline (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight jobs on shutdown")

		loadtest = flag.Bool("loadtest", false, "drive a load ramp against -target instead of serving")
		target   = flag.String("target", "", "loadtest: base URL of the daemon under test")
		ramp     = flag.String("ramp", "5,10,20", "loadtest: comma-separated RPS stages")
		stageDur = flag.Duration("stage", 2*time.Second, "loadtest: duration of each stage")
		sloP99   = flag.Duration("slo-p99", 500*time.Millisecond, "loadtest: per-stage p99 latency gate")
		sloErr   = flag.Float64("slo-errors", 0, "loadtest: max error rate (429/503 never count)")
	)
	flag.Parse()

	if *loadtest {
		os.Exit(runLoadtest(*target, *ramp, *stageDur, *sloP99, *sloErr))
	}

	if *cacheDir != "" {
		if err := experiments.SetRunCacheDir(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, "suvd:", err)
			os.Exit(1)
		}
	}
	srv, err := suvd.New(suvd.Config{
		Workers:       *workers,
		QueueCapacity: *queueCap,
		PerClientCap:  *perClient,
		MaxAttempts:   *attempts,
		JobTimeout:    *jobTimeout,
		DrainTimeout:  *drainTimeout,
		Journal:       *journal,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "suvd:", err)
		os.Exit(1)
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "suvd: draining (signal again to exit immediately)")
		go func() {
			<-sigs
			os.Exit(1)
		}()
		srv.BeginDrain()
		if err := srv.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "suvd:", err)
		}
		hs.Close()
	}()

	fmt.Fprintf(os.Stderr, "suvd: serving on %s (journal %s, %d workers, queue %d)\n",
		*addr, *journal, srv.Snapshot().Workers, *queueCap)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "suvd:", err)
		os.Exit(1)
	}
}

func runLoadtest(target, ramp string, stage time.Duration, p99 time.Duration, errRate float64) int {
	if target == "" {
		fmt.Fprintln(os.Stderr, "suvd: -loadtest requires -target")
		return 2
	}
	var stages []suvd.Stage
	for _, part := range strings.Split(ramp, ",") {
		rps, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || rps <= 0 {
			fmt.Fprintf(os.Stderr, "suvd: bad -ramp entry %q\n", part)
			return 2
		}
		stages = append(stages, suvd.Stage{RPS: rps, Duration: stage})
	}
	res, err := suvd.RunLoad(suvd.LoadConfig{
		BaseURL: target,
		Stages:  stages,
		SLO:     suvd.SLO{MaxP99: p99, MaxErrorRate: errRate},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "suvd:", err)
		return 2
	}
	fmt.Print(res.Render())
	if !res.Passed() {
		return 1
	}
	return 0
}
