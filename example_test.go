package suvtm_test

import (
	"fmt"

	"suvtm"
)

// ExampleRun simulates one STAMP-analogue application under SUV-TM and
// checks its serializability invariant.
func ExampleRun() {
	out, err := suvtm.Run(suvtm.Spec{App: "counter", Scheme: suvtm.SUVTM, Cores: 4, Scale: 0.1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("invariants held:", out.CheckErr == nil)
	fmt.Println("committed:", out.Counters.TxCommitted)
	// Output:
	// invariants held: true
	// committed: 80
}

// ExampleNewBuilder assembles a custom transactional program and runs it
// on the simulated CMP.
func ExampleNewBuilder() {
	memory := suvtm.NewMemory()
	alloc := suvtm.NewAllocator(0x100000, 1<<30)
	region := suvtm.NewRegion(alloc, 1)

	b := suvtm.NewBuilder()
	b.Begin(0)
	b.Load(0, region.WordAddr(0, 0))
	b.AddImm(0, 41)
	b.AddImm(0, 1)
	b.Store(region.WordAddr(0, 0), 0)
	b.Commit()
	b.Barrier(0)

	vm, _ := suvtm.NewVM(suvtm.SUVTM)
	m := suvtm.NewMachine(suvtm.DefaultConfig(1), vm, []suvtm.Program{b.Build()}, memory, alloc)
	if _, err := m.Run(); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("value:", m.ArchMem().Read(region.WordAddr(0, 0)))
	// Output:
	// value: 42
}

// ExampleEstimateTable evaluates the CACTI-style hardware model at the
// paper's 45 nm design point.
func ExampleEstimateTable() {
	est, _ := suvtm.EstimateTable(45, 512, 64)
	fmt.Printf("access %.3f ns, %d cycle(s) at 1.2 GHz\n", est.AccessNs, est.CyclesAt(1.2))
	// Output:
	// access 0.588 ns, 1 cycle(s) at 1.2 GHz
}
