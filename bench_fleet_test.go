// Fleet-throughput benchmarks and the BENCH_fleet.json regression
// harness. Where bench_hotpath_test.go measures one simulation's data
// plane, these measure a whole experiment campaign — the full Figure 6
// grid (eight STAMP analogues under LogTM-SE, FasTM and SUV-TM) — under
// the three fleet configurations:
//
//   - Baseline: every run cold (fresh memory/directory/redirect, no
//     cache, submission-order dispatch) — the pre-fleet behavior.
//   - Cold: machine arenas + longest-expected-first scheduling, cache
//     off — the first pass of a campaign.
//   - Warm: the run cache primed — a repeated pipeline (re-rendering a
//     figure, a sweep sharing the default point) served from memory.
//
// Regenerate the checked-in baseline with:
//
//	BENCH_FLEET=BENCH_fleet.json go test -run TestWriteFleetBench -v .
package suvtm_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"suvtm"
)

// fleetGridSpecs is the benchmark campaign: the Figure 6 grid at a
// reduced scale so one campaign stays in benchmark territory while
// still exercising every app's allocation profile.
func fleetGridSpecs() []suvtm.Spec {
	var specs []suvtm.Spec
	for _, app := range suvtm.StampApps() {
		for _, scheme := range []suvtm.Scheme{suvtm.LogTMSE, suvtm.FasTM, suvtm.SUVTM} {
			specs = append(specs, suvtm.Spec{App: app, Scheme: scheme, Cores: 8, Scale: 0.05})
		}
	}
	return specs
}

// runFleetCampaign executes the grid once under the given options and
// fails the benchmark on any error.
func runFleetCampaign(b *testing.B, specs []suvtm.Spec, o suvtm.BatchOptions) {
	b.Helper()
	outs, err := suvtm.RunManyWith(specs, o)
	if err != nil {
		b.Fatal(err)
	}
	for _, out := range outs {
		if out == nil || out.CheckErr != nil {
			b.Fatalf("campaign outcome missing or invariant-violating: %v", out)
		}
	}
}

// BenchmarkFleetBaseline is the pre-fleet cost of the campaign: no
// arenas, no scheduling, no cache.
func BenchmarkFleetBaseline(b *testing.B) {
	specs := fleetGridSpecs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runFleetCampaign(b, specs, suvtm.BatchOptions{NoArena: true, NoSchedule: true, NoCache: true})
	}
}

// BenchmarkFleetCold is a first-pass campaign with arenas and
// straggler-aware dispatch but nothing cached.
func BenchmarkFleetCold(b *testing.B) {
	specs := fleetGridSpecs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runFleetCampaign(b, specs, suvtm.BatchOptions{NoCache: true})
	}
}

// BenchmarkFleetWarm is a repeated campaign: the cache was primed by an
// identical pass, so every point is a hit.
func BenchmarkFleetWarm(b *testing.B) {
	specs := fleetGridSpecs()
	if err := suvtm.ResetRunCache(); err != nil {
		b.Fatal(err)
	}
	runFleetCampaign(b, specs, suvtm.BatchOptions{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runFleetCampaign(b, specs, suvtm.BatchOptions{})
	}
	b.StopTimer()
	if s := suvtm.FleetSnapshot(); s.Hits == 0 {
		b.Fatal("warm campaign never hit the cache")
	}
}

// fleetDump is the schema of BENCH_fleet.json: the three campaign
// configurations plus the speedups the fleet layer is accountable for.
type fleetDump struct {
	Written     string        `json:"written"`
	GoVersion   string        `json:"go_version"`
	HostCPUs    int           `json:"host_cpus"`
	GridRuns    int           `json:"grid_runs"`
	Results     []benchRecord `json:"results"`
	SpeedupCold float64       `json:"speedup_cold"` // baseline / cold: arenas + scheduling
	SpeedupWarm float64       `json:"speedup_warm"` // baseline / warm: cache hits
}

// TestWriteFleetBench regenerates BENCH_fleet.json and enforces the
// fleet acceptance gates: arenas + scheduling must buy at least 1.3x on
// a cold campaign and the warm cache at least 3x. Opt-in via BENCH_FLEET
// so a plain `go test ./...` stays fast.
func TestWriteFleetBench(t *testing.T) {
	path := os.Getenv("BENCH_FLEET")
	if path == "" {
		t.Skip("set BENCH_FLEET=<output path> to write the fleet benchmark baseline")
	}
	dump := fleetDump{
		Written:   time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		HostCPUs:  runtime.GOMAXPROCS(0),
		GridRuns:  len(fleetGridSpecs()),
	}
	record := func(name string, fn func(b *testing.B)) float64 {
		runtime.GC()
		res := testing.Benchmark(fn)
		rec := benchRecord{
			Name:     name,
			NsPerOp:  float64(res.NsPerOp()),
			AllocsOp: float64(res.AllocsPerOp()),
			BytesOp:  float64(res.AllocedBytesPerOp()),
		}
		dump.Results = append(dump.Results, rec)
		t.Logf("%s: %.0f ns/op, %.0f allocs/op, %.0f B/op", name, rec.NsPerOp, rec.AllocsOp, rec.BytesOp)
		return rec.NsPerOp
	}
	baseline := record("BenchmarkFleetBaseline", BenchmarkFleetBaseline)
	cold := record("BenchmarkFleetCold", BenchmarkFleetCold)
	warm := record("BenchmarkFleetWarm", BenchmarkFleetWarm)
	dump.SpeedupCold = baseline / cold
	dump.SpeedupWarm = baseline / warm
	t.Logf("speedup: cold %.2fx, warm %.2fx", dump.SpeedupCold, dump.SpeedupWarm)
	if dump.SpeedupCold < 1.3 {
		t.Errorf("cold-campaign speedup %.2fx is below the 1.3x gate", dump.SpeedupCold)
	}
	if dump.SpeedupWarm < 3 {
		t.Errorf("warm-cache speedup %.2fx is below the 3x gate", dump.SpeedupWarm)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&dump); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(dump.Results))
}
